package chaos

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/mptable"
	"github.com/severifast/severifast/internal/policy"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/verifier"
)

// Mutation is one adversarial intervention. Arm installs it on a fresh
// harness before the run; Expected lists the error classes a detection is
// allowed to surface as — a failure outside that set is reported as
// Unexpected (detected, but by the wrong layer).
type Mutation interface {
	Family() string
	Name() string
	// Params renders the drawn parameters, for the report.
	Params() string
	Arm(h *Harness)
	Expected() []error
}

// verdictOverrider lets a mutation pre-empt the default classification
// when it knows more than the generic oracle (e.g. the duplicate-delivery
// probe, where success of the run says nothing about the second redeem).
type verdictOverrider interface {
	Verdict(res, clean *RunResult) (Outcome, string, bool)
}

// cleaner is implemented by mutations that touch process-global state
// (interned artifact buffers) and must restore it after the trial.
type cleaner interface {
	Cleanup()
}

func matchesAny(err error, classes []error) bool {
	for _, c := range classes {
		if errors.Is(err, c) {
			return true
		}
	}
	return false
}

// catalog builds the campaign's mutation list for the selected families.
// Draws are made here, eagerly, from per-mutation PRNGs keyed on catalog
// position — so the schedule is a pure function of the seed and the
// report can print every parameter.
func catalog(cfg Config) []Mutation {
	if cfg.Weakened {
		// The oracle self-test: tamper every launch digest under a config
		// whose digest check and broker gate are disabled.
		return []Mutation{&pspDigestTamper{all: true}}
	}
	want := make(map[string]bool, len(cfg.Families))
	for _, f := range cfg.Families {
		want[f] = true
	}
	var muts []Mutation
	idx := 0
	draw := func() *rand.Rand {
		r := campaignRNG(cfg.Seed, idx)
		idx++
		return r
	}
	if want["guestmem"] {
		for i := 0; i < cfg.Trials; i++ {
			r := draw()
			page := uint64(r.Intn(4096)) // first 16 MiB: where components stage
			if r.Intn(2) == 0 {
				page = uint64(r.Intn(1 << 16)) // anywhere in 256 MiB
			}
			muts = append(muts, &memScribble{
				machine: r.Intn(3),
				page:    page,
				delay:   time.Duration(r.Int63n(int64(250 * time.Millisecond))),
				mask:    byte(1 + r.Intn(255)),
			})
		}
		r := draw()
		muts = append(muts, &memScribble{
			// Page 51200 (200 MiB) is far above everything any boot stages
			// or reads: the write must land, change nothing observable, and
			// classify Harmless.
			machine: 0,
			page:    51200,
			delay:   time.Duration(r.Int63n(int64(50 * time.Millisecond))),
			mask:    0xa5,
			unused:  true,
		})
	}
	if want["artifact"] {
		for i := 0; i < cfg.Trials; i++ {
			r := draw()
			muts = append(muts, &artifactCorrupt{
				off:   r.Intn(1 << 20),
				mask:  byte(1 + r.Intn(255)),
				delay: time.Duration(r.Int63n(int64(60 * time.Millisecond))),
			})
		}
		r := draw()
		muts = append(muts, &cachePoison{
			byteIdx: r.Intn(32),
			mask:    byte(1 + r.Intn(255)),
		})
		for i := 0; i < cfg.Trials; i++ {
			r := draw()
			muts = append(muts, &planMutation{
				kind: "bitflip",
				off:  r.Intn(1 << 20),
				mask: byte(1 + r.Intn(255)),
			})
		}
		draw()
		muts = append(muts, &planMutation{kind: "pristine"})
	}
	if want["psp"] {
		for i := 0; i < cfg.Trials; i++ {
			r := draw()
			muts = append(muts, &pspPreEncrypt{
				call: r.Intn(24),
				mask: byte(1 + r.Intn(255)),
			})
		}
		draw()
		muts = append(muts, &pspDigestTamper{})
	}
	if want["snapshot"] {
		for _, kind := range []string{"truncate", "bitflip", "header", "extend", "duplicate"} {
			r := draw()
			muts = append(muts, &snapMutation{
				kind: kind,
				off:  r.Intn(1 << 20),
				mask: byte(1 + r.Intn(255)),
			})
		}
	}
	if want["fork"] {
		for i := 0; i < cfg.Trials; i++ {
			r := draw()
			muts = append(muts, &forkMutation{
				kind: "bitflip",
				off:  r.Intn(1 << 20),
				mask: byte(1 + r.Intn(255)),
			})
		}
		draw()
		muts = append(muts, &forkMutation{kind: "pristine"})
	}
	if want["kbs"] {
		r := draw()
		muts = append(muts, &kbsCorrupt{field: "report", redeem: r.Intn(3), off: r.Intn(1 << 10), mask: byte(1 + r.Intn(255))})
		r = draw()
		muts = append(muts, &kbsCorrupt{field: "chain", redeem: r.Intn(3), off: r.Intn(1 << 10), mask: byte(1 + r.Intn(255))})
		r = draw()
		muts = append(muts, &kbsDelay{redeem: r.Intn(3), delay: 2 * time.Second})
		r = draw()
		muts = append(muts, &kbsDuplicate{redeem: r.Intn(3)})
		r = draw()
		muts = append(muts, &kbsOutage{
			// Boots take hundreds of virtual milliseconds; draw a window
			// wide enough to usually straddle at least one exchange.
			from: time.Duration(int64(50*time.Millisecond) + r.Int63n(int64(300*time.Millisecond))),
			span: time.Duration(int64(150*time.Millisecond) + r.Int63n(int64(300*time.Millisecond))),
		})
	}
	if want["policy"] {
		r := draw()
		muts = append(muts, &polForgedRef{bit: r.Intn(256)})
		draw()
		muts = append(muts, &polRescope{})
		// Revocation delays stay under the ~250ms ceiling the guestmem
		// family established: a scheduled event past the run's natural end
		// would extend the virtual end time and fail the fingerprint match
		// on an otherwise harmless trial.
		r = draw()
		muts = append(muts, &polExpireRefs{
			delay: time.Duration(r.Int63n(int64(250 * time.Millisecond))),
		})
		r = draw()
		muts = append(muts, &polRevokeFloor{
			delay: time.Duration(r.Int63n(int64(250 * time.Millisecond))),
		})
	}
	if want["tcbstorm"] {
		// Same ~250ms delay ceiling as the policy family, and the same
		// draw-order discipline: these draws are appended after every
		// existing family so historic campaigns keep their parameters.
		r := draw()
		muts = append(muts, &stormForgedUnrevoke{
			delay: time.Duration(r.Int63n(int64(250 * time.Millisecond))),
		})
		r = draw()
		muts = append(muts, &stormStaleFloorReplay{
			delay: time.Duration(r.Int63n(int64(250 * time.Millisecond))),
		})
		r = draw()
		muts = append(muts, &stormForgedFloorRestore{
			delay: time.Duration(r.Int63n(int64(250 * time.Millisecond))),
		})
		r = draw()
		muts = append(muts, &stormPristineRecovery{
			delay: time.Duration(r.Int63n(int64(250 * time.Millisecond))),
		})
	}
	return muts
}

// ---------------------------------------------------------------------------
// guestmem family: host scribbles on guest physical pages mid-boot.

// memScribble writes a garbage cacheline into one guest page of the n-th
// machine after a drawn virtual-time delay. Three legal outcomes, all
// deterministic per seed: the write lands on a staged page before
// measurement (boot verifier or launch digest catches it), it targets an
// already-private SNP page (the RMP refuses the host write — harmless),
// or it lands somewhere no boot ever reads (harmless).
type memScribble struct {
	machine int
	page    uint64
	delay   time.Duration
	mask    byte
	unused  bool // targets provably unused memory; expect Harmless
}

func (m *memScribble) Family() string { return "guestmem" }
func (m *memScribble) Name() string {
	if m.unused {
		return "scribble-unused"
	}
	return "scribble"
}
func (m *memScribble) Params() string {
	return fmt.Sprintf("machine=%d page=%d delay=%s mask=%#02x", m.machine, m.page, m.delay, m.mask)
}
func (m *memScribble) Expected() []error {
	if m.unused {
		return nil
	}
	// The scribble can land on staged components (boot verifier catches),
	// measured launch pages (digest diverges), or measured guest tables
	// that the kernel parses after entry (mptable refuses) — any of these
	// is the system failing closed.
	return []error{fleet.ErrDigestMismatch, verifier.ErrVerification, mptable.ErrCorrupt}
}

func (m *memScribble) Arm(h *Harness) {
	count := 0
	h.OnMachine(func(mach *kvm.Machine) {
		if count == m.machine {
			mach := mach
			h.Eng.After(m.delay, func() {
				line := make([]byte, 64)
				for i := range line {
					line[i] = m.mask
				}
				// The RMP may refuse (page already private): that refusal IS
				// the defense, so the error is swallowed, not propagated.
				_ = mach.Mem.HostWrite(m.page*guestmem.PageSize, line)
			})
		}
		count++
	})
}

// ---------------------------------------------------------------------------
// artifact family: canonical buffers and the measured-image cache.

// artifactCorrupt flips one byte of the interned canonical kernel buffer
// at a drawn virtual time. Every guest page staging that kernel aliases
// the same buffer (the CoW fleet path), so the flip is visible to any
// boot that hasn't yet verified — the §4.3 boot verifier must catch it
// against the out-of-band hash page (or the launch digest must diverge).
// Corruption is XOR, so Cleanup re-applies it to restore the
// process-global buffer for later trials.
type artifactCorrupt struct {
	off   int
	mask  byte
	delay time.Duration

	applied    *artifact.Buf
	appliedOff int
}

func (a *artifactCorrupt) Family() string { return "artifact" }
func (a *artifactCorrupt) Name() string   { return "kernel-corrupt" }
func (a *artifactCorrupt) Params() string {
	return fmt.Sprintf("off=%d mask=%#02x delay=%s", a.off, a.mask, a.delay)
}
func (a *artifactCorrupt) Expected() []error {
	return []error{verifier.ErrVerification, fleet.ErrDigestMismatch}
}

func (a *artifactCorrupt) Arm(h *Harness) {
	h.Eng.After(a.delay, func() {
		buf := artifact.Lookup(h.Kernel)
		if buf == nil || buf.Len() == 0 {
			return
		}
		off := a.off % buf.Len()
		buf.Corrupt(off, a.mask)
		a.applied, a.appliedOff = buf, off
	})
}

func (a *artifactCorrupt) Cleanup() {
	if a.applied != nil {
		a.applied.Corrupt(a.appliedOff, a.mask)
		a.applied = nil
	}
}

// cachePoison corrupts the measured-image cache's digest prediction as
// the entry is published — before the fleet provisions it as a broker
// reference value, which is exactly the poisoned-pipeline shape. The
// degraded-mode policy must detect the mismatch, prove the canonical
// bytes intact, evict, replan, and serve the boot cold with an honest
// digest; the trial then classifies Caught via Metrics.Degraded.
type cachePoison struct {
	byteIdx  int
	mask     byte
	poisoned bool
}

func (c *cachePoison) Family() string { return "artifact" }
func (c *cachePoison) Name() string   { return "cache-poison" }
func (c *cachePoison) Params() string {
	return fmt.Sprintf("byte=%d mask=%#02x", c.byteIdx, c.mask)
}
func (c *cachePoison) Expected() []error {
	return []error{fleet.ErrDigestMismatch}
}

func (c *cachePoison) Arm(h *Harness) {
	h.Cfg.Cache.Subscribe(func(mi *fleet.MeasuredImage) {
		if c.poisoned {
			return // the degraded replan publishes a fresh, honest entry
		}
		c.poisoned = true
		mi.Digest[c.byteIdx] ^= c.mask
	})
}

// ---------------------------------------------------------------------------
// psp family: tampering inside the launch measurement path.

// pspPreEncrypt scribbles on a launch page in the window between staging
// and encryption — the n-th LAUNCH_UPDATE_DATA across the whole trial.
// The page is still shared, so the write lands; the PSP then honestly
// measures hostile bytes and the digest check refuses the boot (the
// degraded policy retries once — the tamper fires only once — and the
// retry serves honestly).
type pspPreEncrypt struct {
	call  int
	mask  byte
	seen  int
	fired bool
}

func (t *pspPreEncrypt) Family() string { return "psp" }
func (t *pspPreEncrypt) Name() string   { return "pre-encrypt-tamper" }
func (t *pspPreEncrypt) Params() string {
	return fmt.Sprintf("call=%d mask=%#02x", t.call, t.mask)
}
func (t *pspPreEncrypt) Expected() []error {
	// The launch page hit may be the hash page or page tables (verifier
	// refuses), the MP table (guest kernel refuses), or any other
	// measured page (launch digest diverges from the prediction).
	return []error{fleet.ErrDigestMismatch, verifier.ErrVerification, mptable.ErrCorrupt}
}

func (t *pspPreEncrypt) Arm(h *Harness) {
	h.Host.PSP.PreEncryptTamper = func(mem *guestmem.Memory, gpa uint64, n int) {
		if t.fired || t.seen != t.call {
			t.seen++
			return
		}
		t.seen++
		t.fired = true
		if n > 32 {
			n = 32
		}
		garbage := make([]byte, n)
		for i := range garbage {
			garbage[i] = t.mask
		}
		_ = mem.HostWrite(gpa, garbage)
	}
}

// pspDigestTamper truncates the launch digest at LAUNCH_FINISH — zeroing
// its second half, the classic truncated-MAC weakening. Fires once per
// trial unless all is set (the weakened-oracle self-test, where every
// launch is tampered and must surface as an ESCAPE).
type pspDigestTamper struct {
	all   bool
	fired bool
}

func (t *pspDigestTamper) Family() string { return "psp" }
func (t *pspDigestTamper) Name() string {
	if t.all {
		return "digest-truncate-all"
	}
	return "digest-truncate"
}
func (t *pspDigestTamper) Params() string {
	return fmt.Sprintf("zero=16..31 all=%v", t.all)
}
func (t *pspDigestTamper) Expected() []error {
	return []error{fleet.ErrDigestMismatch}
}

func (t *pspDigestTamper) Arm(h *Harness) {
	h.Host.PSP.DigestTamper = func(d [32]byte) [32]byte {
		if t.fired && !t.all {
			return d
		}
		t.fired = true
		for i := 16; i < 32; i++ {
			d[i] = 0
		}
		return d
	}
}

// ---------------------------------------------------------------------------
// kbs family: evidence corruption, delivery faults, and outages, armed by
// wrapping the harness's broker in a Service decorator.

// kbsProxy forwards to the inner broker, letting one mutation intercept
// call boundaries. Redeem calls are numbered so a drawn exchange can be
// singled out.
type kbsProxy struct {
	inner     kbs.Service
	redeems   int
	onRedeem  func(idx int, req *kbs.RedeemRequest, now sim.Time) sim.Time
	roundTrip func(idx int, req kbs.RedeemRequest, now sim.Time) (*kbs.RedeemResult, error)
	outage    func(now sim.Time) error
}

func (px *kbsProxy) Challenge(tenant string, now sim.Time) (kbs.Challenge, error) {
	if px.outage != nil {
		if err := px.outage(now); err != nil {
			return kbs.Challenge{}, err
		}
	}
	return px.inner.Challenge(tenant, now)
}

func (px *kbsProxy) Redeem(req kbs.RedeemRequest, now sim.Time) (*kbs.RedeemResult, error) {
	idx := px.redeems
	px.redeems++
	if px.outage != nil {
		if err := px.outage(now); err != nil {
			return nil, err
		}
	}
	if px.roundTrip != nil {
		return px.roundTrip(idx, req, now)
	}
	if px.onRedeem != nil {
		now = px.onRedeem(idx, &req, now)
	}
	return px.inner.Redeem(req, now)
}

func (px *kbsProxy) Provision(digest [32]byte, label string) error {
	return px.inner.Provision(digest, label)
}
func (px *kbsProxy) Revoke(chipID string) error { return px.inner.Revoke(chipID) }
func (px *kbsProxy) Stats() (kbs.Stats, error)  { return px.inner.Stats() }

// kbsCorrupt flips one byte of the report or chain on the drawn redeem.
// The broker's per-exchange signature checks must refuse with a denial.
type kbsCorrupt struct {
	field  string // "report" | "chain"
	redeem int
	off    int
	mask   byte
}

func (m *kbsCorrupt) Family() string { return "kbs" }
func (m *kbsCorrupt) Name() string   { return "corrupt-" + m.field }
func (m *kbsCorrupt) Params() string {
	return fmt.Sprintf("redeem=%d off=%d mask=%#02x", m.redeem, m.off, m.mask)
}
func (m *kbsCorrupt) Expected() []error { return []error{kbs.ErrDenied} }

func (m *kbsCorrupt) Arm(h *Harness) {
	h.Service = &kbsProxy{
		inner: h.Service,
		onRedeem: func(idx int, req *kbs.RedeemRequest, now sim.Time) sim.Time {
			if idx != m.redeem {
				return now
			}
			b := req.Report
			if m.field == "chain" {
				b = req.Chain
			}
			if len(b) > 0 {
				mut := append([]byte(nil), b...)
				mut[m.off%len(mut)] ^= m.mask
				if m.field == "chain" {
					req.Chain = mut
				} else {
					req.Report = mut
				}
			}
			return now
		},
	}
}

// kbsDelay delivers the drawn redeem late — past the nonce TTL — by
// shifting the virtual timestamp the broker sees. The freshness check
// must refuse with an expired denial; no wall-clock sleeping involved.
type kbsDelay struct {
	redeem int
	delay  time.Duration
}

func (m *kbsDelay) Family() string { return "kbs" }
func (m *kbsDelay) Name() string   { return "delayed-redeem" }
func (m *kbsDelay) Params() string {
	return fmt.Sprintf("redeem=%d delay=%s", m.redeem, m.delay)
}
func (m *kbsDelay) Expected() []error { return []error{kbs.ErrExpired, kbs.ErrDenied} }

func (m *kbsDelay) Arm(h *Harness) {
	h.Service = &kbsProxy{
		inner: h.Service,
		onRedeem: func(idx int, req *kbs.RedeemRequest, now sim.Time) sim.Time {
			if idx == m.redeem {
				return now.Add(m.delay)
			}
			return now
		},
	}
}

// kbsDuplicate delivers the drawn redeem twice back to back and returns
// the first verdict to the fleet (so the run itself proceeds normally).
// The second, duplicate exchange is the probe: the broker must refuse it
// as a replay — a grant is an ESCAPE regardless of how the run went.
type kbsDuplicate struct {
	redeem  int
	fired   bool
	dupErr  error
	granted bool
}

func (m *kbsDuplicate) Family() string { return "kbs" }
func (m *kbsDuplicate) Name() string   { return "duplicate-redeem" }
func (m *kbsDuplicate) Params() string { return fmt.Sprintf("redeem=%d", m.redeem) }
func (m *kbsDuplicate) Expected() []error {
	// The fleet-visible exchange is honest; failures would be unexpected.
	return nil
}

func (m *kbsDuplicate) Arm(h *Harness) {
	inner := h.Service
	h.Service = &kbsProxy{
		inner: inner,
		roundTrip: func(idx int, req kbs.RedeemRequest, now sim.Time) (*kbs.RedeemResult, error) {
			res, err := inner.Redeem(req, now)
			if idx == m.redeem {
				m.fired = true
				dup, dupErr := inner.Redeem(req, now)
				m.dupErr = dupErr
				m.granted = dupErr == nil && dup != nil
			}
			return res, err
		},
	}
}

func (m *kbsDuplicate) Verdict(res, clean *RunResult) (Outcome, string, bool) {
	if !m.fired {
		return Unexpected, "trial ran fewer redeems than the drawn duplicate index", true
	}
	if m.granted {
		return Escape, "broker granted a byte-identical duplicate redeem (replayed nonce accepted)", true
	}
	if errors.Is(m.dupErr, kbs.ErrReplay) {
		if len(res.failures()) > 0 {
			return Unexpected, fmt.Sprintf("duplicate refused, but the honest exchange failed too: %v", res.failures()[0]), true
		}
		return Caught, "duplicate redeem refused as a replay; honest exchange unaffected", true
	}
	return Unexpected, fmt.Sprintf("duplicate refused with the wrong class: %v", m.dupErr), true
}

// kbsOutage makes the broker unreachable for a virtual-time window: both
// Challenge and Redeem return a plain transport error. The fleet must
// absorb it — retries with backoff, the circuit breaker opening after
// consecutive transport failures and fast-failing instead of hammering a
// dead broker, half-open recovery after the window — or fail closed with
// transport/breaker/deadline classes. Nothing may be served un-attested.
type kbsOutage struct {
	from time.Duration
	span time.Duration
}

func (m *kbsOutage) Family() string { return "kbs" }
func (m *kbsOutage) Name() string   { return "outage-window" }
func (m *kbsOutage) Params() string {
	return fmt.Sprintf("from=%s span=%s", m.from, m.span)
}
func (m *kbsOutage) Expected() []error {
	return []error{fleet.ErrKBSUnreachable, kbs.ErrUnavailable, fleet.ErrDeadlineExceeded}
}

func (m *kbsOutage) Arm(h *Harness) {
	from := sim.Time(0).Add(m.from)
	to := from.Add(m.span)
	h.Service = &kbsProxy{
		inner: h.Service,
		outage: func(now sim.Time) error {
			if now >= from && now < to {
				return fmt.Errorf("kbs transport: connection refused (outage window)")
			}
			return nil
		},
	}
}

func (m *kbsOutage) Verdict(res, clean *RunResult) (Outcome, string, bool) {
	if len(res.failures()) > 0 {
		return "", "", false // the default expected-class check applies
	}
	if _, d, foreign := res.foreignDigest(clean); foreign {
		return Escape, fmt.Sprintf("boot served digest %x during/after outage, never produced cleanly", d[:8]), true
	}
	if res.fingerprint() == clean.fingerprint() {
		return Harmless, "outage window overlapped no exchange", true
	}
	return Caught, fmt.Sprintf("outage absorbed: %d retries, %d breaker fast-fails, transitions %v, all digests honest",
		res.Metrics.Retries, res.Metrics.BreakerFastFails, res.Metrics.BreakerTransitions), true
}

// ---------------------------------------------------------------------------
// policy family: subverting the trust-claim store every admission gate
// consults. The harness points fleet admission at the broker's policy
// engine, so a store-level tamper must surface at the policy layer (a
// fleet admission refusal wrapping policy.ErrDenied) or at the broker
// (a kbs denial mapped from the engine's verdict) — never as a served
// boot.

// polForgedRef intercepts the store's write path and flips one drawn bit
// of the signature on every measurement claim as the fleet provisions it.
// The store files the forgery verbatim (an adversary on the write path
// skips the honest writer's checks), so the engine's per-claim signature
// verification is the last line: every redemption consulting the claim
// must refuse it as forged.
type polForgedRef struct {
	bit int
}

func (m *polForgedRef) Family() string { return "policy" }
func (m *polForgedRef) Name() string   { return "forged-ref-claim" }
func (m *polForgedRef) Params() string { return fmt.Sprintf("bit=%d", m.bit) }
func (m *polForgedRef) Expected() []error {
	return []error{kbs.ErrMeasurement, kbs.ErrDenied}
}

func (m *polForgedRef) Arm(h *Harness) {
	h.Broker.Policy().Intercept(func(c policy.Claim) policy.Claim {
		if c.Kind != policy.KindMeasurement || c.SigR == nil || c.SigR.BitLen() == 0 {
			return c
		}
		bit := m.bit % c.SigR.BitLen()
		c.SigR = new(big.Int).SetBit(c.SigR, bit, 1-c.SigR.Bit(bit))
		return c
	})
}

// polRescope intercepts the write path and re-scopes every measurement
// claim to a tenant that never boots. The claim files under the foreign
// tenant's domain — invisible to the booting tenant's evaluation — so
// every redemption must refuse the digest as untrusted. (The rescope also
// breaks the signature, but the scope isolation alone is the defense
// under test: claims filed under one tenant never speak for another.)
type polRescope struct{}

func (m *polRescope) Family() string { return "policy" }
func (m *polRescope) Name() string   { return "rescoped-ref-claim" }
func (m *polRescope) Params() string { return "scope=tenant-evil" }
func (m *polRescope) Expected() []error {
	return []error{kbs.ErrMeasurement, kbs.ErrDenied}
}

func (m *polRescope) Arm(h *Harness) {
	h.Broker.Policy().Intercept(func(c policy.Claim) policy.Claim {
		if c.Kind == policy.KindMeasurement {
			c.Scope = "tenant-evil"
		}
		return c
	})
}

// polExpireRefs is a measurement revocation storm at a drawn virtual
// instant: one RevokeKind call distrusts every reference value at once.
// Exchanges strictly after the instant must be refused (the broker's
// verdict cache is version-keyed, so outstanding grants die with the
// store bump); a storm landing after the last exchange must change
// nothing — Harmless, byte for byte.
type polExpireRefs struct {
	delay time.Duration
}

func (m *polExpireRefs) Family() string { return "policy" }
func (m *polExpireRefs) Name() string   { return "revoke-refs-storm" }
func (m *polExpireRefs) Params() string { return fmt.Sprintf("at=%s", m.delay) }
func (m *polExpireRefs) Expected() []error {
	return []error{kbs.ErrMeasurement, kbs.ErrDenied}
}

func (m *polExpireRefs) Arm(h *Harness) {
	h.Eng.After(m.delay, func() {
		h.Broker.Policy().RevokeKind("*", policy.KindMeasurement, h.Eng.Now())
	})
}

// polRevokeFloor revokes the broker's minimum-TCB platform claim at a
// drawn instant, leaving no platform claim in force. Both gates consult
// the same store: boots admitted after the instant are refused at the
// fleet's serve-time policy check (wrapping policy.ErrDenied), and boots
// already past it are refused at the broker's exchange (a kbs denial).
type polRevokeFloor struct {
	delay time.Duration
}

func (m *polRevokeFloor) Family() string { return "policy" }
func (m *polRevokeFloor) Name() string   { return "revoke-platform-floor" }
func (m *polRevokeFloor) Params() string { return fmt.Sprintf("at=%s", m.delay) }
func (m *polRevokeFloor) Expected() []error {
	return []error{policy.ErrDenied, kbs.ErrDenied}
}

func (m *polRevokeFloor) Arm(h *Harness) {
	h.Eng.After(m.delay, func() {
		h.Broker.Policy().RevokeClaim("*", kbs.MinTCBClaimID, h.Eng.Now())
	})
}
