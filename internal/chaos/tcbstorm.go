package chaos

import (
	"fmt"
	"time"

	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/policy"
)

// ---------------------------------------------------------------------------
// tcbstorm family: platform-generation revocation storms and minimum-TCB
// floor bumps landing under live boots, plus the forged "recovery" claims
// an adversary would file to undo them. The storms here are the honest
// operator actions; the tamper is the attempt to neutralize them through
// the store's hostile-write path. The engine's in-force-revocation
// precedence and per-claim signature verification are the defenses under
// test: a storm that bites must keep biting, and a storm that touches
// nothing the run depends on must change nothing at all.

// stormBumpedFloor is the floor the storm mutations raise above the
// enrolled platform's TCB, mirroring the cluster storm scenario's
// SNP+1/microcode+5 step.
func stormBumpedFloor() kbs.TCB {
	f := chaosTCB
	f.SNP++
	f.Microcode += 5
	return f
}

// stormForgedUnrevoke revokes the enrolled chip at a drawn instant and
// immediately injects an unsigned platform claim naming the chip — the
// forged "un-revocation" an adversary on the store's write path would
// file to restore trust. Two independent defenses must hold: in-force
// revocation claims out-rank every platform claim, and the forgery
// fails per-claim signature verification anyway (its ID is chosen to
// sort first, so the engine does consult it). Every exchange strictly
// after the storm must be refused; a run with zero failures means the
// forgery worked and is an ESCAPE no matter what was served.
type stormForgedUnrevoke struct {
	delay time.Duration
}

func (m *stormForgedUnrevoke) Family() string { return "tcbstorm" }
func (m *stormForgedUnrevoke) Name() string   { return "forged-unrevoke" }
func (m *stormForgedUnrevoke) Params() string { return fmt.Sprintf("at=%s", m.delay) }
func (m *stormForgedUnrevoke) Expected() []error {
	// The revocation bites at the fleet's admission gate (a policy
	// denial) or at the broker's exchange (a kbs denial), depending on
	// where each boot is when the storm lands.
	return []error{policy.ErrDenied, kbs.ErrDenied}
}

func (m *stormForgedUnrevoke) Arm(h *Harness) {
	h.Eng.After(m.delay, func() {
		_ = h.Broker.RevokeAt("chip-chaos", h.Eng.Now())
		_ = h.Broker.Policy().Inject(policy.Claim{
			ID:      "aaa-unrevoke-chip-chaos", // sorts ahead of every honest claim
			Kind:    policy.KindPlatform,
			Scope:   "*",
			Subject: "chip-chaos",
			Issuer:  kbs.PolicyAnchorID, // impersonates the anchor, carries no signature
			Note:    "forged un-revocation",
		})
	})
}

func (m *stormForgedUnrevoke) Verdict(res, clean *RunResult) (Outcome, string, bool) {
	if len(res.failures()) == 0 {
		return Escape, "chip revoked mid-run yet every boot served — the forged un-revocation restored trust", true
	}
	return "", "", false // the default expected-class check applies
}

// stormStaleFloorReplay bumps the minimum-TCB floor above the enrolled
// platform at a drawn instant. Every exchange strictly after the bump
// replays evidence at the old, now-stale TCB and must be refused —
// including verdicts the broker had already cached, which die with the
// store version. Zero failures means stale evidence kept redeeming past
// the bump: an ESCAPE.
type stormStaleFloorReplay struct {
	delay time.Duration
}

func (m *stormStaleFloorReplay) Family() string { return "tcbstorm" }
func (m *stormStaleFloorReplay) Name() string   { return "stale-floor-replay" }
func (m *stormStaleFloorReplay) Params() string {
	return fmt.Sprintf("at=%s floor=%s", m.delay, stormBumpedFloor())
}
func (m *stormStaleFloorReplay) Expected() []error {
	return []error{policy.ErrDenied, kbs.ErrDenied}
}

func (m *stormStaleFloorReplay) Arm(h *Harness) {
	h.Eng.After(m.delay, func() {
		_ = h.Broker.BumpFloor(stormBumpedFloor(), h.Eng.Now())
	})
}

func (m *stormStaleFloorReplay) Verdict(res, clean *RunResult) (Outcome, string, bool) {
	if len(res.failures()) == 0 {
		return Escape, "floor bumped above the platform mid-run yet every boot served — stale evidence kept redeeming", true
	}
	return "", "", false
}

// stormForgedFloorRestore bumps the floor and injects an unsigned
// replacement platform claim restoring the old, lower floor, its ID
// chosen to sort ahead of the honest bump claim so the engine consults
// the forgery first. Signature verification must refuse it and the
// below-floor denial must keep biting.
type stormForgedFloorRestore struct {
	delay time.Duration
}

func (m *stormForgedFloorRestore) Family() string { return "tcbstorm" }
func (m *stormForgedFloorRestore) Name() string   { return "forged-floor-restore" }
func (m *stormForgedFloorRestore) Params() string { return fmt.Sprintf("at=%s", m.delay) }
func (m *stormForgedFloorRestore) Expected() []error {
	return []error{policy.ErrDenied, kbs.ErrDenied}
}

func (m *stormForgedFloorRestore) Arm(h *Harness) {
	h.Eng.After(m.delay, func() {
		_ = h.Broker.BumpFloor(stormBumpedFloor(), h.Eng.Now())
		_ = h.Broker.Policy().Inject(policy.Claim{
			ID:      "aaa-floor-restore", // sorts ahead of the honest floor-bump claim
			Kind:    policy.KindPlatform,
			Scope:   "*",
			Subject: "*",
			MinTCB:  chaosTCB.Encode(),
			Issuer:  kbs.PolicyAnchorID,
			Note:    "forged floor restore",
		})
	})
}

func (m *stormForgedFloorRestore) Verdict(res, clean *RunResult) (Outcome, string, bool) {
	if len(res.failures()) == 0 {
		return Escape, "floor bumped mid-run yet every boot served — the forged floor restore was honored", true
	}
	return "", "", false
}

// stormPristineRecovery is the Harmless control: a full recovery cycle
// that touches nothing the run depends on. A ghost chip that never
// attests is revoked, and the floor is re-filed at its current value —
// the store version moves twice, so every cached verdict and admission
// certificate is re-derived from scratch, yet every boot must still
// serve and the run must stay byte-identical to the clean run.
type stormPristineRecovery struct {
	delay time.Duration
}

func (m *stormPristineRecovery) Family() string { return "tcbstorm" }
func (m *stormPristineRecovery) Name() string   { return "pristine-recovery" }
func (m *stormPristineRecovery) Params() string { return fmt.Sprintf("at=%s", m.delay) }
func (m *stormPristineRecovery) Expected() []error {
	// Every boot must succeed; any failure is an unexpected detection.
	return nil
}

func (m *stormPristineRecovery) Arm(h *Harness) {
	h.Eng.After(m.delay, func() {
		now := h.Eng.Now()
		_ = h.Broker.RevokeAt("chip-ghost", now)
		_ = h.Broker.BumpFloor(chaosTCB, now)
	})
}
