package chaos

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// chaosTCB is the enrolled platform's TCB, also the broker's floor.
var chaosTCB = kbs.TCB{BootLoader: 2, TEE: 1, SNP: 8, Microcode: 115}

// Harness is one trial's world: a fresh engine, host, broker, cache,
// telemetry registry, and fleet configuration, all seeded identically for
// every trial so that the only difference between runs is the armed
// mutation. Mutations reach into it from Arm: schedule virtual-time
// events on Eng, install PSP tamper hooks via Host.PSP, observe machines
// via OnMachine, wrap Service, or subscribe to Cfg.Cache.
type Harness struct {
	Eng    *sim.Engine
	Host   *kvm.Host
	Broker *kbs.Broker
	// Service is what the fleet actually speaks to; mutations may replace
	// it with a decorator around Broker (evidence corruption, delivery
	// delay, duplication, outages).
	Service kbs.Service
	Reg     *telemetry.Registry
	Cfg     fleet.Config
	Preset  kernelgen.Preset
	Initrd  []byte
	// Kernel is the canonical kernel image every boot stages — the
	// process-interned artifact buffer the artifact family corrupts.
	Kernel []byte

	weakened bool
	hooks    []func(*kvm.Machine)
	served   []servedBoot
}

// servedBoot is one boot that went live: its tier and the launch digest
// the PSP actually measured, captured through fleet.Config.OnServed after
// the attestation gate.
type servedBoot struct {
	Tier   fleet.Tier
	Digest [32]byte
}

// newHarness assembles a trial world. The weakened variant models a
// deliberately broken verifier — no digest check, no degraded fallback,
// no key-broker gate — so tampered boots go live and the oracle's ESCAPE
// verdict can be demonstrated.
func newHarness(initrd []byte, weakened bool) (*Harness, error) {
	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	host.Telemetry = reg

	preset := kernelgen.Lupine()
	art, err := kernelgen.Cached(preset)
	if err != nil {
		return nil, fmt.Errorf("chaos: building kernel artifacts: %w", err)
	}

	h := &Harness{
		Eng:      eng,
		Host:     host,
		Reg:      reg,
		Preset:   preset,
		Initrd:   initrd,
		Kernel:   art.BzImageLZ4,
		weakened: weakened,
	}
	host.OnNewMachine = func(m *kvm.Machine) {
		for _, fn := range h.hooks {
			fn(m)
		}
	}

	h.Cfg = fleet.Config{
		Workers:      2,
		Retry:        fleet.RetryPolicy{Max: 2, Backoff: time.Millisecond},
		BootDeadline: 30 * time.Second,
		Breaker:      fleet.BreakerPolicy{Threshold: 3, Cooldown: 20 * time.Millisecond},
		Cache:        fleet.NewCache(),
		Telemetry:    reg,
	}
	if weakened {
		h.Cfg.InsecureSkipDigestCheck = true
		return h, nil
	}
	h.Cfg.DegradedFallback = true

	auth := kbs.NewAuthority(99)
	enr := auth.Enroll(host.PSP, "chip-chaos", chaosTCB)
	h.Broker = kbs.NewBroker(auth.Root(), kbs.Config{
		MinTCB:   chaosTCB,
		NonceTTL: time.Second,
		Seed:     7,
	})
	h.Broker.AddTenant("t0", []byte("tenant secret"))
	h.Service = h.Broker
	h.Cfg.Enrollment = enr
	h.Cfg.AgentSeed = 1000
	// Fleet admission shares the broker's policy engine, so a store-level
	// tamper (the policy mutation family) is visible to every gate.
	h.Cfg.Admission = h.Broker.PolicyEngine()
	return h, nil
}

// OnMachine registers an observer for every machine the host creates,
// in creation order. Mutations use it to target guest memory mid-boot.
func (h *Harness) OnMachine(fn func(*kvm.Machine)) {
	h.hooks = append(h.hooks, fn)
}

// RunResult is everything the oracle compares: per-boot outcomes in
// submission order, the served launch digests, the fleet metrics, the
// virtual end time, and the full deterministic telemetry summary.
type RunResult struct {
	BootErrs []error
	Served   []servedBoot
	Metrics  *fleet.Metrics
	End      sim.Time
	Summary  []byte
}

// failures returns the non-nil boot errors.
func (r *RunResult) failures() []error {
	var out []error
	for _, e := range r.BootErrs {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

// foreignDigest reports the first served boot whose launch digest the
// clean run never produced — a tamper that went live.
func (r *RunResult) foreignDigest(clean *RunResult) (int, [32]byte, bool) {
	honest := make(map[[32]byte]bool, len(clean.Served))
	for _, s := range clean.Served {
		honest[s.Digest] = true
	}
	for i, s := range r.Served {
		if !honest[s.Digest] {
			return i, s.Digest, true
		}
	}
	return 0, [32]byte{}, false
}

// fingerprint hashes the run's observable state. Two runs with equal
// fingerprints behaved identically boot for boot, span for span, counter
// for counter — in virtual time, not just in outcome.
func (r *RunResult) fingerprint() string {
	hsh := sha256.New()
	for _, e := range r.BootErrs {
		if e == nil {
			hsh.Write([]byte("ok;"))
		} else {
			fmt.Fprintf(hsh, "err:%s;", e.Error())
		}
	}
	for _, s := range r.Served {
		fmt.Fprintf(hsh, "served:%s:%x;", s.Tier, s.Digest)
	}
	fmt.Fprintf(hsh, "end:%d;", int64(r.End))
	hsh.Write(r.Summary)
	return fmt.Sprintf("%x", hsh.Sum(nil))
}

// Run registers the image, submits boots at fixed virtual-time spacing,
// and drives the engine to quiescence. The orchestrator is built here —
// after Arm — so mutations that edit Cfg (breaker policy, cache
// subscriptions, Service wrappers) take effect.
func (h *Harness) Run(boots int) (*RunResult, error) {
	cfg := h.Cfg
	cfg.KBS = h.Service
	if h.weakened {
		cfg.KBS = nil
	}
	res := &RunResult{BootErrs: make([]error, boots)}
	cfg.OnServed = func(p *sim.Proc, m *kvm.Machine, tier fleet.Tier) {
		h.served = append(h.served, servedBoot{Tier: tier, Digest: m.Launch.Digest()})
	}
	o := fleet.New(h.Eng, h.Host, cfg)
	img, err := o.RegisterImage("fn", h.Preset, h.Initrd)
	if err != nil {
		return nil, fmt.Errorf("chaos: registering image: %w", err)
	}
	h.Eng.Go("chaos-arrivals", func(p *sim.Proc) {
		for i := 0; i < boots; i++ {
			i := i
			err := o.Submit(p, fleet.Request{
				Tenant: "t0",
				Image:  img,
				Done: func(dp *sim.Proc, tier fleet.Tier, err error) {
					res.BootErrs[i] = err
				},
			})
			if err != nil {
				res.BootErrs[i] = err
			}
			p.Sleep(2 * time.Millisecond)
		}
		o.Close()
	})
	h.Eng.Run()

	res.Served = h.served
	res.Metrics = o.Metrics()
	res.End = h.Eng.Now()
	sum, err := json.Marshal(h.Reg.Summarize())
	if err != nil {
		return nil, fmt.Errorf("chaos: marshaling telemetry summary: %w", err)
	}
	res.Summary = sum
	return res, nil
}
