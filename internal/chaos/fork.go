package chaos

import (
	"errors"
	"fmt"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
)

// forkMutation dirties the parent's frozen plain-text blob in the window
// between snapshot capture and fork adoption — the exact surface the
// fork root digest exists to defend. These trials run standalone (like
// the snapshot family): one cold boot seeds the fork container, the
// blob is corrupted, and the next warm boot's AdoptFork must refuse
// with ErrForkTampered and evict the warm pool; the boot after that
// must recover cold with the honest measured digest. A fork of a
// dirtied parent going live — with any digest — is an ESCAPE.
type forkMutation struct {
	kind string // bitflip | pristine
	off  int
	mask byte
}

func (m *forkMutation) Family() string { return "fork" }
func (m *forkMutation) Name() string {
	if m.kind == "pristine" {
		return "pristine-control"
	}
	return "parent-dirty"
}
func (m *forkMutation) Params() string {
	if m.kind == "pristine" {
		return "untouched parent blob"
	}
	return fmt.Sprintf("off=%d mask=%#02x", m.off, m.mask)
}
func (m *forkMutation) Expected() []error { return []error{guestmem.ErrForkTampered} }
func (m *forkMutation) Arm(*Harness)      {} // standalone; never armed on a fleet harness

// runForkTrial drives a standalone warm fleet through the
// capture → dirty → fork → recover sequence and classifies the result.
func runForkTrial(m *forkMutation, initrd []byte) TrialReport {
	tr := TrialReport{Family: m.Family(), Name: m.Name(), Params: m.Params()}
	fail := func(format string, args ...any) TrialReport {
		tr.Outcome = Unexpected
		tr.Detail = fmt.Sprintf(format, args...)
		return tr
	}

	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	var digests [][32]byte
	o := fleet.New(eng, host, fleet.Config{
		Name:       "fork-trial",
		Standalone: true,
		EnableWarm: true,
		OnServed: func(_ *sim.Proc, mach *kvm.Machine, _ fleet.Tier) {
			digests = append(digests, mach.Launch.Digest())
		},
	})
	img, err := o.RegisterImage("fn", kernelgen.Lupine(), initrd)
	if err != nil {
		return fail("registering image: %v", err)
	}

	var (
		tiers    []fleet.Tier
		errs     []error
		setupErr error
	)
	eng.Go("fork-trial", func(p *sim.Proc) {
		serve := func() {
			o.Serve(p, fleet.Request{Tenant: "t0", Image: img,
				Done: func(_ *sim.Proc, tier fleet.Tier, err error) {
					tiers, errs = append(tiers, tier), append(errs, err)
				}})
		}
		serve() // cold boot: measures, captures the fork container
		fk := img.ForkState()
		if fk == nil || fk.Src.Blob() == nil || fk.Src.Blob().Len() == 0 {
			setupErr = fmt.Errorf("cold boot left no forkable container")
			return
		}
		blob := fk.Src.Blob()
		off := m.off % blob.Len()
		if m.kind == "bitflip" {
			blob.Corrupt(off, m.mask) // the dirty parent page
		}
		serve() // the fork attempt against the (possibly) dirtied parent
		if m.kind == "bitflip" {
			// The blob is a process-interned artifact shared with every
			// other trial that captures the same donor content: undo the
			// XOR so the tamper cannot leak across trials.
			blob.Corrupt(off, m.mask)
		}
		serve() // recovery: the evicted pool must re-seed cold, honestly
	})
	eng.Run()
	tr.EndNS = int64(eng.Now())

	if setupErr != nil {
		return fail("%v", setupErr)
	}
	if len(errs) != 3 {
		return fail("served %d boots, want 3", len(errs))
	}
	if errs[0] != nil {
		return fail("donor cold boot failed: %v", errs[0])
	}

	if m.kind == "pristine" {
		for i, e := range errs {
			if e != nil {
				return fail("boot %d refused with an untouched parent: %v", i, e)
			}
		}
		if tiers[1] != fleet.TierWarm || tiers[2] != fleet.TierWarm {
			return fail("pristine forks served %v/%v, want warm/warm", tiers[1], tiers[2])
		}
		for i, d := range digests {
			if d != digests[0] {
				tr.Outcome = Escape
				tr.Detail = fmt.Sprintf("pristine fork %d served digest %x, donor measured %x", i, d[:8], digests[0][:8])
				return tr
			}
		}
		tr.Outcome = Harmless
		tr.Detail = "pristine forks adopted; every boot carries the donor's measured digest"
		return tr
	}

	// bitflip: the fork attempt must have been refused.
	if errs[1] == nil {
		tr.Outcome = Escape
		tr.Detail = fmt.Sprintf("fork of a dirtied parent went live as %s with digest %x", tiers[1], digests[1][:8])
		return tr
	}
	if !errors.Is(errs[1], guestmem.ErrForkTampered) {
		return fail("fork refused outside the expected class: %v", errs[1])
	}
	if errs[2] != nil {
		return fail("post-eviction recovery boot failed: %v", errs[2])
	}
	if tiers[2] == fleet.TierWarm {
		tr.Outcome = Escape
		tr.Detail = "tampered warm pool survived detection: recovery boot was served warm"
		return tr
	}
	// Successful boots are the cold seed and the recovery; the recovery
	// must re-measure to the same honest digest.
	if len(digests) != 2 || digests[1] != digests[0] {
		tr.Outcome = Escape
		tr.Detail = "recovery boot served a digest the donor never measured"
		return tr
	}
	tr.Outcome = Caught
	tr.Detail = fmt.Sprintf("fork refused (%v); warm pool evicted; recovery re-seeded %s with the honest digest",
		guestmem.ErrForkTampered, tiers[2])
	return tr
}
