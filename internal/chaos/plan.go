package chaos

import (
	"errors"
	"fmt"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/sim"
)

// planMutation dirties the measured plan's staging blob in the window
// between image registration (the plan is published, its digest folded
// from honest bytes) and the next launch measurement — the exact surface
// the zero-copy loader exposes: guest pages alias the blob, so a flipped
// bit would ride into guest memory with full provenance. The defense is
// that Corrupt invalidates the artifact's digest memos, forcing the PSP
// to re-hash the bytes it actually measures; the cached prediction keeps
// the honest digest, and the boot must refuse with ErrDigestMismatch.
// A tampered boot going live under the registered digest is an ESCAPE.
// These trials run standalone, mirroring the fork family's
// dirty → refuse → restore → recover pristine-control pattern.
type planMutation struct {
	kind string // bitflip | pristine
	off  int
	mask byte
}

func (m *planMutation) Family() string { return "artifact" }
func (m *planMutation) Name() string {
	if m.kind == "pristine" {
		return "plan-pristine-control"
	}
	return "plan-blob-dirty"
}
func (m *planMutation) Params() string {
	if m.kind == "pristine" {
		return "untouched staging blob"
	}
	return fmt.Sprintf("off=%d mask=%#02x", m.off, m.mask)
}
func (m *planMutation) Expected() []error { return []error{fleet.ErrDigestMismatch} }
func (m *planMutation) Arm(*Harness)      {} // standalone; never armed on a fleet harness

// runPlanTrial drives a standalone cold fleet through
// plan → dirty blob → refuse → restore → recover and classifies the
// result.
func runPlanTrial(m *planMutation, initrd []byte) TrialReport {
	tr := TrialReport{Family: m.Family(), Name: m.Name(), Params: m.Params()}
	fail := func(format string, args ...any) TrialReport {
		tr.Outcome = Unexpected
		tr.Detail = fmt.Sprintf(format, args...)
		return tr
	}

	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	cache := fleet.NewCache()
	var digests [][32]byte
	o := fleet.New(eng, host, fleet.Config{
		Name:       "plan-trial",
		Standalone: true,
		Cache:      cache,
		OnServed: func(_ *sim.Proc, mach *kvm.Machine, _ fleet.Tier) {
			digests = append(digests, mach.Launch.Digest())
		},
	})
	img, err := o.RegisterImage("fn", kernelgen.Lupine(), initrd)
	if err != nil {
		return fail("registering image: %v", err)
	}

	var (
		tiers    []fleet.Tier
		errs     []error
		setupErr error
	)
	eng.Go("plan-trial", func(p *sim.Proc) {
		serve := func() {
			o.Serve(p, fleet.Request{Tenant: "t0", Image: img,
				Done: func(_ *sim.Proc, tier fleet.Tier, err error) {
					tiers, errs = append(tiers, tier), append(errs, err)
				}})
		}
		serve() // cold boot: hashes components, publishes the measured plan
		mi := cache.Get(img.CacheKey())
		if mi == nil {
			setupErr = fmt.Errorf("cold boot left no cached plan")
			return
		}
		// Attack the largest blob-backed region: the bulk loader payload,
		// whose bytes are opaque to the guest — no structural checksum
		// trips first, so the launch digest is the only defense.
		var reg measure.Region
		for _, r := range mi.Regions {
			if r.Art != nil && len(r.Data) > len(reg.Data) {
				reg = r
			}
		}
		if reg.Art == nil {
			setupErr = fmt.Errorf("cached plan has no blob-backed regions to attack")
			return
		}
		blobOff := reg.ArtOff + m.off%len(reg.Data)
		if m.kind == "bitflip" {
			reg.Art.Corrupt(blobOff, m.mask) // dirty the aliased loader segment
		}
		serve() // relaunch from the (possibly) dirtied plan
		if m.kind == "bitflip" {
			// Undo the XOR before recovery: the cached plan is reused
			// as-is, so the recovery boot must see the honest bytes.
			reg.Art.Corrupt(blobOff, m.mask)
		}
		serve() // recovery: the same cached plan, honest again
	})
	eng.Run()
	tr.EndNS = int64(eng.Now())

	if setupErr != nil {
		return fail("%v", setupErr)
	}
	if len(errs) != 3 {
		return fail("served %d boots, want 3", len(errs))
	}
	if errs[0] != nil {
		return fail("planning cold boot failed: %v", errs[0])
	}

	if m.kind == "pristine" {
		for i, e := range errs {
			if e != nil {
				return fail("boot %d refused with an untouched blob: %v", i, e)
			}
		}
		if tiers[1] != fleet.TierCachedCold || tiers[2] != fleet.TierCachedCold {
			return fail("pristine relaunches served %v/%v, want cached-cold/cached-cold", tiers[1], tiers[2])
		}
		for i, d := range digests {
			if d != digests[0] {
				tr.Outcome = Escape
				tr.Detail = fmt.Sprintf("pristine relaunch %d served digest %x, plan measured %x", i, d[:8], digests[0][:8])
				return tr
			}
		}
		tr.Outcome = Harmless
		tr.Detail = "pristine relaunches reused the plan; every boot carries the registered digest"
		return tr
	}

	// bitflip: the relaunch against the dirtied blob must have been
	// refused — a stale digest memo would let it go live.
	if errs[1] == nil {
		tr.Outcome = Escape
		tr.Detail = fmt.Sprintf("boot from a dirtied plan blob went live as %s with digest %x", tiers[1], digests[1][:8])
		return tr
	}
	if !errors.Is(errs[1], fleet.ErrDigestMismatch) {
		return fail("dirty relaunch refused outside the expected class: %v", errs[1])
	}
	if errs[2] != nil {
		return fail("post-restore recovery boot failed: %v", errs[2])
	}
	// Successful boots are the planning cold boot and the recovery; the
	// recovery must re-measure to the same honest digest.
	if len(digests) != 2 || digests[1] != digests[0] {
		tr.Outcome = Escape
		tr.Detail = "recovery boot served a digest the plan never measured"
		return tr
	}
	tr.Outcome = Caught
	tr.Detail = fmt.Sprintf("tampered plan refused (%v); restored blob re-measured the honest digest",
		fleet.ErrDigestMismatch)
	return tr
}
