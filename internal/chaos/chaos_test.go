package chaos

import (
	"bytes"
	"testing"

	"github.com/severifast/severifast/internal/telemetry"
)

// TestCampaignZeroEscapes is the headline acceptance run: a fixed-seed
// campaign across every family must end with zero ESCAPEs — every tamper
// is either caught by the layer that owns it or provably without effect.
func TestCampaignZeroEscapes(t *testing.T) {
	reg := telemetry.NewRegistry()
	rep, err := Run(Config{Seed: 42, Boots: 3, Trials: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) == 0 {
		t.Fatal("campaign ran no trials")
	}
	fams := make(map[string]bool)
	for _, tr := range rep.Trials {
		fams[tr.Family] = true
		if tr.Outcome == Escape {
			t.Errorf("ESCAPE: %s/%s (%s): %s", tr.Family, tr.Name, tr.Params, tr.Detail)
		}
		if tr.Outcome == Unexpected {
			t.Errorf("unexpected detection: %s/%s (%s): %s", tr.Family, tr.Name, tr.Params, tr.Detail)
		}
	}
	for _, f := range AllFamilies {
		if !fams[f] {
			t.Errorf("family %q ran no trials", f)
		}
	}
	if rep.Escapes != 0 {
		t.Fatalf("campaign reports %d escapes; outcomes: %v", rep.Escapes, rep.Outcomes)
	}
	if rep.Outcomes[Caught] == 0 {
		t.Fatalf("no mutation was caught — the adversary isn't biting: %v", rep.Outcomes)
	}
	// Campaign telemetry: one trial counter and one span per trial.
	sum := reg.Summarize()
	var counted int64
	for name, c := range sum.Counters {
		if len(name) >= len("severifast_chaos_trials_total") && name[:len("severifast_chaos_trials_total")] == "severifast_chaos_trials_total" {
			counted += c
		}
	}
	if counted != int64(len(rep.Trials)) {
		t.Fatalf("chaos trial counters sum to %d, want %d", counted, len(rep.Trials))
	}
	if got := sum.SpansByName["chaos.trial"]; got != len(rep.Trials) {
		t.Fatalf("chaos.trial spans %d, want %d", got, len(rep.Trials))
	}
}

// TestCampaignDeterminism: two campaigns from the same seed must marshal
// to byte-identical reports — schedules, outcomes, virtual end times and
// all. A third campaign from a different seed must draw different
// parameters (same shape, different bytes).
func TestCampaignDeterminism(t *testing.T) {
	run := func(seed int64) []byte {
		rep, err := Run(Config{Seed: seed, Boots: 3, Trials: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed campaigns diverged:\n%s\n---\n%s", a, b)
	}
	c := run(43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical reports — the seed is not reaching the draws")
	}
}

// TestWeakenedVerifierEscapes is the oracle self-test: with the digest
// check and broker gate disabled and every launch digest tampered, the
// tampered boots go live — and the oracle MUST say ESCAPE. If it cannot
// fail here, its zero-escape verdicts elsewhere mean nothing.
func TestWeakenedVerifierEscapes(t *testing.T) {
	rep, err := Run(Config{Seed: 42, Boots: 3, Weakened: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Escapes == 0 {
		t.Fatalf("weakened verifier produced no ESCAPE; outcomes: %v", rep.Outcomes)
	}
	for _, tr := range rep.Trials {
		if tr.Outcome == Escape {
			t.Logf("expected escape observed: %s/%s: %s", tr.Family, tr.Name, tr.Detail)
		}
	}
}

// TestTCBStormFamily pins the storm family's verdicts mutation by
// mutation: the forged un-revocation and floor-restore claims and the
// stale-floor evidence replay must be Caught (the storm keeps biting
// through the forgery), and the pristine recovery control — a ghost-chip
// revocation plus an identical floor re-file that invalidates every
// cached verdict — must be Harmless, byte for byte.
func TestTCBStormFamily(t *testing.T) {
	rep, err := Run(Config{Seed: 42, Boots: 3, Trials: 1, Families: []string{"tcbstorm"}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Outcome{
		"forged-unrevoke":      Caught,
		"stale-floor-replay":   Caught,
		"forged-floor-restore": Caught,
		"pristine-recovery":    Harmless,
	}
	if len(rep.Trials) != len(want) {
		t.Fatalf("tcbstorm campaign ran %d trials, want %d", len(rep.Trials), len(want))
	}
	for _, tr := range rep.Trials {
		if tr.Family != "tcbstorm" {
			t.Fatalf("foreign family in restricted campaign: %s/%s", tr.Family, tr.Name)
		}
		if w, ok := want[tr.Name]; !ok {
			t.Errorf("unknown tcbstorm mutation %q", tr.Name)
		} else if tr.Outcome != w {
			t.Errorf("%s (%s): outcome %s, want %s: %s", tr.Name, tr.Params, tr.Outcome, w, tr.Detail)
		}
	}
}

// TestSingleFamilyCampaign: family selection restricts the catalog.
func TestSingleFamilyCampaign(t *testing.T) {
	rep, err := Run(Config{Seed: 7, Boots: 2, Trials: 1, Families: []string{"snapshot"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 5 {
		t.Fatalf("snapshot-only campaign ran %d trials, want 5", len(rep.Trials))
	}
	for _, tr := range rep.Trials {
		if tr.Family != "snapshot" {
			t.Fatalf("foreign family in restricted campaign: %s/%s", tr.Family, tr.Name)
		}
		if tr.Outcome == Escape || tr.Outcome == Unexpected {
			t.Fatalf("%s/%s: %s: %s", tr.Family, tr.Name, tr.Outcome, tr.Detail)
		}
	}
}
