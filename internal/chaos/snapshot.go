package chaos

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/firecracker"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/snapshot"
)

// snapMutation corrupts a sealed snapshot container in transit. These
// trials run standalone — one boot, one capture, one sealed encode, one
// mutation, one decode — because the surface under test is the container
// integrity layer, not the fleet: DecodeSealed must refuse any byte-level
// tamper with ErrCorrupt, and accept only the exact written bytes.
type snapMutation struct {
	kind string // truncate | bitflip | header | extend | duplicate
	off  int
	mask byte
}

func (m *snapMutation) Family() string { return "snapshot" }
func (m *snapMutation) Name() string   { return m.kind }
func (m *snapMutation) Params() string {
	return fmt.Sprintf("off=%d mask=%#02x", m.off, m.mask)
}
func (m *snapMutation) Expected() []error { return []error{snapshot.ErrCorrupt} }
func (m *snapMutation) Arm(*Harness)      {} // standalone; never armed on a fleet harness

// runSnapshotTrial boots one SNP guest in its own virtual world, captures
// and seals a snapshot, applies the mutation to the container bytes, and
// classifies the decoder's reaction.
func runSnapshotTrial(m *snapMutation, initrd []byte) TrialReport {
	tr := TrialReport{Family: m.Family(), Name: m.Name(), Params: m.Params()}
	fail := func(format string, args ...any) TrialReport {
		tr.Outcome = Unexpected
		tr.Detail = fmt.Sprintf(format, args...)
		return tr
	}

	preset := kernelgen.Lupine()
	art, err := kernelgen.Cached(preset)
	if err != nil {
		return fail("building artifacts: %v", err)
	}
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	var sealed []byte
	var bootErr error
	eng.Go("snap-boot", func(p *sim.Proc) {
		res, err := firecracker.Boot(p, host, firecracker.Config{
			Preset:    preset,
			Artifacts: art,
			Initrd:    initrd,
			Level:     sev.SNP,
			Scheme:    firecracker.SchemeSEVeriFastBz,
		})
		if err != nil {
			bootErr = err
			return
		}
		img, err := snapshot.Capture(p, res.Machine)
		if err != nil {
			bootErr = err
			return
		}
		sealed, bootErr = snapshot.EncodeSealed(img)
	})
	eng.Run()
	tr.EndNS = int64(eng.Now())
	if bootErr != nil {
		return fail("donor boot/capture: %v", bootErr)
	}

	mut := append([]byte(nil), sealed...)
	switch m.kind {
	case "truncate":
		mut = mut[:m.off%len(mut)]
	case "bitflip":
		mut[m.off%len(mut)] ^= m.mask
	case "header":
		mut[m.off%21] ^= m.mask // magic, flags, size, or npages field
	case "extend":
		mut = append(mut, m.mask)
	case "duplicate":
		// Delivered twice, unmodified: both decodes must succeed and agree.
	}

	img, err := snapshot.DecodeSealed(mut)
	switch {
	case errors.Is(err, snapshot.ErrCorrupt):
		if m.kind == "duplicate" {
			return fail("pristine duplicate rejected: %v", err)
		}
		tr.Outcome = Caught
		tr.Detail = fmt.Sprintf("seal refused the tampered container: %v", err)
	case err != nil:
		return fail("decoder failed outside ErrCorrupt: %v", err)
	case m.kind == "duplicate":
		again, err := snapshot.DecodeSealed(mut)
		if err != nil {
			return fail("second decode of identical bytes failed: %v", err)
		}
		if img.Size != again.Size || len(img.Pages) != len(again.Pages) {
			tr.Outcome = Escape
			tr.Detail = "duplicate decode of identical bytes diverged"
			return tr
		}
		tr.Outcome = Harmless
		tr.Detail = "duplicate delivery decodes identically; idempotent by construction"
	case bytes.Equal(mut, sealed):
		tr.Outcome = Harmless
		tr.Detail = "mutation was the identity on these bytes"
	default:
		tr.Outcome = Escape
		tr.Detail = fmt.Sprintf("%s accepted by the seal: tampered snapshot decoded cleanly", m.kind)
	}
	return tr
}
