// Package chaos is a deterministic, seed-driven adversary engine for the
// whole boot path. It runs mutation campaigns — guest-memory scribbles,
// canonical-artifact and measured-image-cache poisoning, pre-encryption
// launch-page tampering, PSP digest truncation, snapshot corruption,
// parent-snapshot dirtying between capture and fork,
// key-broker evidence corruption/delay/duplication/outage,
// policy-store subversion (forged, rescoped, expired, and revoked trust
// claims), and TCB storms (mid-run chip revocations and floor bumps with
// forged un-revocation and floor-restore claims riding the recovery) —
// and an invariant oracle classifies every trial:
//
//   - Caught: the boot failed with the error class the mutation is
//     expected to provoke (launch-digest mismatch, verifier abort, broker
//     denial, deadline, breaker refusal), or the tamper was detected and
//     recovered by the degraded-mode policy with honest digests.
//   - Harmless: every boot succeeded and the run's state — per-boot
//     outcomes, served launch digests, virtual end time, and the full
//     telemetry summary — is byte-identical to an unmutated run of the
//     same seed.
//   - ESCAPE: the tamper survived to a successfully served boot (a served
//     launch digest the clean run never produced, or divergent state with
//     no detection). Any ESCAPE fails the campaign.
//   - Unexpected: the boot failed, but outside the mutation's expected
//     error class — a detection, but by the wrong layer; reported
//     distinctly so CI can decide how strict to be.
//
// Everything is virtual-time deterministic: the same seed produces the
// same mutations, the same schedules, the same outcomes, and a
// byte-identical report.
package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// Outcome is the oracle's verdict for one trial.
type Outcome string

// Trial outcomes. Escape is upper-case in reports so a grep for failures
// cannot miss it.
const (
	Caught     Outcome = "caught"
	Harmless   Outcome = "harmless"
	Escape     Outcome = "ESCAPE"
	Unexpected Outcome = "unexpected"
)

// Families, in campaign order.
var AllFamilies = []string{"guestmem", "artifact", "psp", "snapshot", "fork", "kbs", "policy", "tcbstorm"}

// Config sizes a campaign.
type Config struct {
	// Seed drives every mutation draw and schedule. Same seed, same
	// campaign, same report bytes.
	Seed int64
	// Boots is the boot count per fleet trial. Defaults to 4.
	Boots int
	// Trials scales the randomized mutations per family (fixed-shape
	// mutations always run once). Defaults to 2.
	Trials int
	// Families selects a subset of AllFamilies; empty means all.
	Families []string
	// Weakened runs the oracle self-test instead of a campaign: the
	// digest check and the key-broker gate are disabled (a deliberately
	// broken verifier) and the PSP digest is tampered on every launch.
	// The expected result is an ESCAPE — proving the oracle can fail.
	Weakened bool
	// Telemetry, when set, receives campaign counters
	// (severifast_chaos_trials_total by family and outcome) and one
	// chaos.trial span per trial.
	Telemetry *telemetry.Registry
}

func (c *Config) fillDefaults() {
	if c.Boots <= 0 {
		c.Boots = 4
	}
	if c.Trials <= 0 {
		c.Trials = 2
	}
	if len(c.Families) == 0 {
		c.Families = AllFamilies
	}
}

// TrialReport is one classified trial.
type TrialReport struct {
	Family  string  `json:"family"`
	Name    string  `json:"name"`
	Params  string  `json:"params"`
	Outcome Outcome `json:"outcome"`
	Detail  string  `json:"detail"`
	// EndNS is the trial's virtual end time: a determinism witness (two
	// same-seed campaigns must agree on it to the nanosecond).
	EndNS int64 `json:"end_ns"`
}

// Report is a campaign's result. It contains no wall-clock state, so two
// runs with the same Config marshal to identical JSON.
type Report struct {
	Seed     int64           `json:"seed"`
	Boots    int             `json:"boots"`
	Families []string        `json:"families"`
	Weakened bool            `json:"weakened,omitempty"`
	Trials   []TrialReport   `json:"trials"`
	Outcomes map[Outcome]int `json:"outcomes"`
	Escapes  int             `json:"escapes"`
}

// JSON renders the report deterministically (map keys sorted by
// encoding/json).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Run executes a campaign: one clean reference run, then every mutation
// in the catalog, each against a fresh harness, classified against the
// reference.
func Run(cfg Config) (*Report, error) {
	cfg.fillDefaults()
	// One canonical initrd for the whole campaign: every harness interns
	// the same slice, so trials share artifact buffers the way fleet
	// shards do — which is exactly the surface the artifact family
	// attacks (and must restore).
	initrd := kernelgen.BuildInitrd(7, 1<<20)

	rep := &Report{
		Seed:     cfg.Seed,
		Boots:    cfg.Boots,
		Families: cfg.Families,
		Weakened: cfg.Weakened,
		Outcomes: make(map[Outcome]int),
	}

	// The clean reference: same harness, same workload, no mutation. Its
	// failure would mean the harness itself is broken, not the system
	// under test.
	cleanH, err := newHarness(initrd, cfg.Weakened)
	if err != nil {
		return nil, fmt.Errorf("chaos: building clean harness: %w", err)
	}
	clean, err := cleanH.Run(cfg.Boots)
	if err != nil {
		return nil, fmt.Errorf("chaos: clean run: %w", err)
	}
	if n := len(clean.failures()); n != 0 {
		return nil, fmt.Errorf("chaos: clean run had %d boot failures (first: %v)", n, clean.failures()[0])
	}

	for _, mut := range catalog(cfg) {
		var tr TrialReport
		if ft, ok := mut.(*forkMutation); ok {
			tr = runForkTrial(ft, initrd)
		} else if pt, ok := mut.(*planMutation); ok {
			tr = runPlanTrial(pt, initrd)
		} else if st, ok := mut.(*snapMutation); ok {
			tr = runSnapshotTrial(st, initrd)
		} else {
			tr, err = runFleetTrial(cfg, mut, initrd, clean)
			if err != nil {
				return nil, err
			}
		}
		rep.Trials = append(rep.Trials, tr)
		rep.Outcomes[tr.Outcome]++
		if tr.Outcome == Escape {
			rep.Escapes++
		}
		if reg := cfg.Telemetry; reg != nil {
			reg.Counter("severifast_chaos_trials_total",
				telemetry.A("family", tr.Family),
				telemetry.A("outcome", string(tr.Outcome))).Inc()
			reg.Record("chaos", "chaos.trial", 0, sim.Time(tr.EndNS),
				telemetry.A("mutation", tr.Family+"/"+tr.Name),
				telemetry.A("outcome", string(tr.Outcome)))
		}
	}
	return rep, nil
}

// runFleetTrial arms one mutation on a fresh fleet harness, runs the
// workload, and classifies the result against the clean reference.
func runFleetTrial(cfg Config, mut Mutation, initrd []byte, clean *RunResult) (TrialReport, error) {
	if cl, ok := mut.(cleaner); ok {
		defer cl.Cleanup()
	}
	h, err := newHarness(initrd, cfg.Weakened)
	if err != nil {
		return TrialReport{}, fmt.Errorf("chaos: building harness for %s/%s: %w", mut.Family(), mut.Name(), err)
	}
	mut.Arm(h)
	res, err := h.Run(cfg.Boots)
	if err != nil {
		return TrialReport{}, fmt.Errorf("chaos: trial %s/%s: %w", mut.Family(), mut.Name(), err)
	}
	outcome, detail := classify(mut, res, clean)
	return TrialReport{
		Family:  mut.Family(),
		Name:    mut.Name(),
		Params:  mut.Params(),
		Outcome: outcome,
		Detail:  detail,
		EndNS:   int64(res.End),
	}, nil
}

// classify is the invariant oracle.
func classify(mut Mutation, res, clean *RunResult) (Outcome, string) {
	if ov, ok := mut.(verdictOverrider); ok {
		if out, detail, decided := ov.Verdict(res, clean); decided {
			return out, detail
		}
	}
	if fails := res.failures(); len(fails) > 0 {
		for _, e := range fails {
			if !matchesAny(e, mut.Expected()) {
				return Unexpected, fmt.Sprintf("boot failed outside the expected class: %v", e)
			}
		}
		return Caught, fmt.Sprintf("%d boot(s) refused with the expected error class", len(fails))
	}
	// Every boot succeeded. A served launch digest the clean run never
	// produced means the tamper went live: that is the escape the oracle
	// exists to catch.
	if i, d, ok := res.foreignDigest(clean); ok {
		return Escape, fmt.Sprintf("served boot %d went live with digest %x, never produced by the clean run", i, d[:8])
	}
	if res.Metrics.Degraded > 0 {
		return Caught, fmt.Sprintf("tamper detected and recovered in degraded mode (%d recoveries), all served digests honest", res.Metrics.Degraded)
	}
	if res.fingerprint() == clean.fingerprint() {
		return Harmless, "run state byte-identical to the clean run"
	}
	return Escape, "boots succeeded with honest digests but run state diverged without detection"
}

// campaignRNG derives the per-mutation PRNG: stable under catalog order,
// independent across mutations.
func campaignRNG(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(idx)*7_919 + 12345))
}
