// Package hostwork provides the bounded worker pool behind the host-time
// measurement pipeline. It parallelizes *host* work only — SHA-256 page
// digests, AES page encryption — and never touches the virtual clock:
// the simulation engine remains single-threaded, and every user of this
// package must produce results that are independent of worker count and
// scheduling (index-addressed outputs folded in a deterministic serial
// pass). See DESIGN.md §9 for the determinism argument.
//
// Workers are persistent: the first parallel Do spawns pool goroutines
// (up to GOMAXPROCS) that live for the process and sleep on a job
// channel between calls. A fleet booting thousands of VMs thus pays
// goroutine startup once, not once per pipeline flush, and concurrent
// Do calls from different OS threads share one pool instead of
// oversubscribing the machine with transient goroutines. The caller
// always participates in its own job, so Do makes progress even when
// every pool worker is busy with someone else's work — which also makes
// nested Do calls deadlock-free.
package hostwork

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the requested pool width. 0 means "GOMAXPROCS at call time".
var workers atomic.Int32

// jobs feeds the persistent workers. One job may be sent many times —
// each receive enlists one worker into that job's cursor loop. The
// channel is unbuffered on purpose: a send must rendezvous with a
// worker parked in receive, so a successful non-blocking send proves a
// live worker took the job. (A buffered send can park a job nobody is
// committed to receiving — the caller would then block forever in
// wg.Wait with the job stranded in the buffer.)
var jobs = make(chan *job)

// spawned counts live pool goroutines, capped at GOMAXPROCS.
var spawned atomic.Int32

// SetWorkers overrides the pool width; n <= 0 restores the GOMAXPROCS
// default. Returns the previous override. Tests use it to prove results
// are identical at every width, including 1. The override bounds how
// many participants a Do call enlists; already-spawned pool goroutines
// stay parked, they are not killed.
func SetWorkers(n int) int {
	return int(workers.Swap(int32(n)))
}

// Workers reports the effective pool width.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// job is one Do call: an atomic cursor over [0, n) that any number of
// participants (the caller plus enlisted pool workers) drain together.
type job struct {
	fn     func(int)
	n      int
	cursor atomic.Int64
	wg     sync.WaitGroup
}

// run drains the cursor until the index space is exhausted. Safe for
// any number of concurrent participants; late joiners that find the
// cursor spent return immediately.
func (j *job) run() {
	for {
		i := int(j.cursor.Add(1)) - 1
		if i >= j.n {
			return
		}
		j.fn(i)
	}
}

// worker is one persistent pool goroutine: sleep on the channel, drain
// the received job, signal completion, repeat for the process lifetime.
func worker() {
	for j := range jobs {
		j.run()
		j.wg.Done()
	}
}

// enlist tries to hand j to one pool worker: first an idle one (the
// rendezvous send succeeds only against a worker parked in receive),
// else a freshly spawned one if the pool is below GOMAXPROCS. Reports
// whether a worker was enlisted; false means the pool is saturated and
// the caller should stop recruiting.
func enlist(j *job) bool {
	j.wg.Add(1)
	select {
	case jobs <- j:
		return true
	default:
	}
	if spawned.Add(1) <= int32(runtime.GOMAXPROCS(0)) {
		go worker()
		jobs <- j
		return true
	}
	spawned.Add(-1)
	j.wg.Done()
	return false
}

// Do runs fn(0), ..., fn(n-1) across the pool and returns when all calls
// have finished. Calls are distributed by an atomic cursor, so fn must
// not care which worker runs which index or in what order. With one
// worker (or n <= 1) everything runs inline on the caller's goroutine —
// the serial reference the parallel path is tested against.
func Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	j := &job{fn: fn, n: n}
	for h := 0; h < w-1; h++ {
		if !enlist(j) {
			break
		}
	}
	j.run()
	j.wg.Wait()
}
