// Package hostwork provides the bounded worker pool behind the host-time
// measurement pipeline. It parallelizes *host* work only — SHA-256 page
// digests, AES page encryption — and never touches the virtual clock:
// the simulation engine remains single-threaded, and every user of this
// package must produce results that are independent of worker count and
// scheduling (index-addressed outputs folded in a deterministic serial
// pass). See DESIGN.md §9 for the determinism argument.
package hostwork

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the pool width. 0 means "GOMAXPROCS at call time".
var workers atomic.Int32

// SetWorkers overrides the pool width; n <= 0 restores the GOMAXPROCS
// default. Returns the previous override. Tests use it to prove results
// are identical at every width, including 1.
func SetWorkers(n int) int {
	return int(workers.Swap(int32(n)))
}

// Workers reports the effective pool width.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(0), ..., fn(n-1) across the pool and returns when all calls
// have finished. Calls are distributed by an atomic cursor, so fn must
// not care which worker runs which index or in what order. With one
// worker (or n <= 1) everything runs inline on the caller's goroutine —
// the serial reference the parallel path is tested against.
func Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
