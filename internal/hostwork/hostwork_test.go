package hostwork

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestDoColdPool is the regression for the stranded-job deadlock: the
// very first parallel Do in a process finds no spawned workers, so the
// handoff must either rendezvous with a live worker or spawn one — a
// job parked where nobody is committed to receiving it hangs wg.Wait
// forever.
func TestDoColdPool(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var hits [100]atomic.Int32
	Do(len(hits), func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want exactly once", i, got)
		}
	}
}

func TestDoEveryWidth(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)
	for _, w := range []int{1, 2, 3, 8, 64} {
		SetWorkers(w)
		var sum atomic.Int64
		Do(1000, func(i int) { sum.Add(int64(i)) })
		if got := sum.Load(); got != 999*1000/2 {
			t.Fatalf("width %d: sum %d, want %d", w, got, 999*1000/2)
		}
	}
}

// TestDoConcurrent: many goroutines sharing the pool at once, each with
// its own job, all completing with every index visited exactly once.
func TestDoConcurrent(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var hits [64]atomic.Int32
			Do(len(hits), func(i int) { hits[i].Add(1) })
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Errorf("index %d ran %d times", i, hits[i].Load())
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDoNested: a job's fn may itself call Do; the caller always
// participates in its own job, so nesting cannot deadlock even with the
// pool saturated.
func TestDoNested(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	var sum atomic.Int64
	Do(8, func(i int) {
		Do(8, func(k int) { sum.Add(1) })
	})
	if got := sum.Load(); got != 64 {
		t.Fatalf("nested sum %d, want 64", got)
	}
}
