package policy

// Canonical claim encoding. The layout follows internal/psp's certificate
// idiom: length-prefixed strings bounded before allocation, fixed-width
// big.Int field elements, ECDSA P-384 over SHA-384 of the body. The
// encoding is canonical — Marshal(Unmarshal(b)) == b for every accepted b
// — which is what makes the signature meaningful (there is exactly one
// byte string a signature speaks for) and what the fuzz target pins.

import (
	"crypto/ecdsa"
	"crypto/sha512"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"github.com/severifast/severifast/internal/sim"
)

// ErrWire rejects malformed claim bytes.
var ErrWire = errors.New("policy: claim wire invalid")

// claimMagic opens every encoded claim; the version byte follows.
var claimMagic = [4]byte{'S', 'F', 'P', 'C'}

const claimWireVersion = 1

// maxClaimWire bounds an encoded claim: magic+version, six length-
// prefixed strings (255 bytes each), the TCB floor, two instants, and
// the 96-byte signature. Larger input is rejected before parsing.
const maxClaimWire = 5 + 6*(1+255) + 8 + 16 + 96

// Marshal serializes the claim with its signature (zero bytes when
// unsigned).
func (c *Claim) Marshal() []byte {
	out := c.body()
	var fe [48]byte
	sigInt(c.SigR).FillBytes(fe[:])
	out = append(out, fe[:]...)
	sigInt(c.SigS).FillBytes(fe[:])
	out = append(out, fe[:]...)
	return out
}

func sigInt(x *big.Int) *big.Int {
	if x == nil {
		return new(big.Int)
	}
	return x
}

// body is the signed portion: everything except SigR/SigS.
func (c *Claim) body() []byte {
	out := make([]byte, 0, 128)
	out = append(out, claimMagic[:]...)
	out = append(out, claimWireVersion)
	for _, s := range []string{c.ID, string(c.Kind), c.Scope, c.Subject, c.Note, c.Issuer} {
		out = append(out, byte(len(s)))
		out = append(out, s...)
	}
	var u [8]byte
	binary.LittleEndian.PutUint64(u[:], c.MinTCB)
	out = append(out, u[:]...)
	binary.LittleEndian.PutUint64(u[:], uint64(c.NotBefore))
	out = append(out, u[:]...)
	binary.LittleEndian.PutUint64(u[:], uint64(c.NotAfter))
	out = append(out, u[:]...)
	return out
}

// UnmarshalClaim parses Marshal's output. Every string length is checked
// against the remaining bytes before slicing, trailing bytes are
// rejected, and the whole input is bounded up front, so arbitrary
// host-controlled bytes fail fast instead of allocating.
func UnmarshalClaim(b []byte) (*Claim, error) {
	if len(b) > maxClaimWire {
		return nil, fmt.Errorf("%w: %d bytes exceeds maximum %d", ErrWire, len(b), maxClaimWire)
	}
	if len(b) < 5 || [4]byte(b[:4]) != claimMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrWire)
	}
	if b[4] != claimWireVersion {
		return nil, fmt.Errorf("%w: version %d", ErrWire, b[4])
	}
	rest := b[5:]
	var fields [6]string
	for i := range fields {
		if len(rest) < 1 {
			return nil, fmt.Errorf("%w: truncated string length", ErrWire)
		}
		n := int(rest[0])
		if 1+n > len(rest) {
			return nil, fmt.Errorf("%w: string length %d exceeds remaining %d bytes", ErrWire, n, len(rest)-1)
		}
		fields[i] = string(rest[1 : 1+n])
		rest = rest[1+n:]
	}
	if len(rest) != 24+96 {
		return nil, fmt.Errorf("%w: fixed tail is %d bytes, want %d", ErrWire, len(rest), 24+96)
	}
	c := &Claim{
		ID:        fields[0],
		Kind:      Kind(fields[1]),
		Scope:     fields[2],
		Subject:   fields[3],
		Note:      fields[4],
		Issuer:    fields[5],
		MinTCB:    binary.LittleEndian.Uint64(rest[0:8]),
		NotBefore: sim.Time(binary.LittleEndian.Uint64(rest[8:16])),
		NotAfter:  sim.Time(binary.LittleEndian.Uint64(rest[16:24])),
		SigR:      new(big.Int).SetBytes(rest[24:72]),
		SigS:      new(big.Int).SetBytes(rest[72:120]),
	}
	return c, nil
}

// SignClaim signs c's body with the issuer's key, installing the
// signature. ECDSA signature bytes are not reproducible across runs even
// under a seeded reader (the stdlib mixes extra entropy draws), so
// callers must never let them reach golden-pinned output and must never
// share rng with other deterministic draws.
func SignClaim(c *Claim, issuer *ecdsa.PrivateKey, rng io.Reader) error {
	sum := sha512.Sum384(c.body())
	r, s, err := ecdsa.Sign(rng, issuer, sum[:])
	if err != nil {
		return fmt.Errorf("policy: claim signing: %w", err)
	}
	c.SigR, c.SigS = r, s
	return nil
}

// VerifyClaim checks c's signature under the issuer's public key.
func VerifyClaim(c *Claim, issuer *ecdsa.PublicKey) bool {
	if c.SigR == nil || c.SigS == nil {
		return false
	}
	sum := sha512.Sum384(c.body())
	return ecdsa.Verify(issuer, sum[:], c.SigR, c.SigS)
}
