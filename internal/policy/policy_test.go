package policy

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/psp"
	"github.com/severifast/severifast/internal/sim"
)

// testPKI is a small fixture: a store with an anchored root signer and
// helpers that mint signed claims. Each signer gets a private rng —
// ECDSA signing draws a nondeterministic number of bytes, so signing
// streams are never shared.
type testPKI struct {
	t     *testing.T
	store *Store
	keys  map[string]*signerKey
}

func newPKI(t *testing.T) *testPKI {
	t.Helper()
	p := &testPKI{t: t, store: NewStore(), keys: make(map[string]*signerKey)}
	p.addSigner("root", 1)
	p.store.EnsureDomain("*", "root")
	return p
}

func (p *testPKI) addSigner(id string, seed int64) {
	p.t.Helper()
	rng := rand.New(rand.NewSource(seed))
	key := psp.DeriveKey(rng)
	if err := p.store.AddSigner(id, &key.PublicKey); err != nil {
		p.t.Fatalf("AddSigner(%s): %v", id, err)
	}
	p.keys[id] = &signerKey{key: key, rng: rng}
}

func (p *testPKI) signed(c Claim) Claim {
	p.t.Helper()
	sk := p.keys[c.Issuer]
	if sk == nil {
		p.t.Fatalf("no key for issuer %q", c.Issuer)
	}
	if err := SignClaim(&c, sk.key, sk.rng); err != nil {
		p.t.Fatalf("SignClaim(%s): %v", c.ID, err)
	}
	return c
}

func (p *testPKI) add(c Claim) {
	p.t.Helper()
	if err := p.store.AddClaim(p.signed(c)); err != nil {
		p.t.Fatalf("AddClaim(%s): %v", c.ID, err)
	}
}

func ms(n int64) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }

const testTCB = uint64(2)<<56 | uint64(1)<<48 | uint64(8)<<8 | 115

func wantReason(t *testing.T, err error, rule string, reason Reason) {
	t.Helper()
	if err == nil {
		t.Fatalf("want denial %s/%s, got grant", rule, reason)
	}
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("denial does not match ErrDenied: %v", err)
	}
	d := DenialOf(err)
	if d == nil {
		t.Fatalf("no *Denial in chain: %v", err)
	}
	if d.Rule != rule || d.Reason != reason {
		t.Fatalf("denial = %s/%s, want %s/%s (%v)", d.Rule, d.Reason, rule, reason, err)
	}
	if d.Cert == nil || d.Cert.Decision != "deny" {
		t.Fatalf("denial carries no deny certificate: %+v", d.Cert)
	}
}

func TestEvaluateGrantAndTrace(t *testing.T) {
	p := newPKI(t)
	p.add(Claim{ID: "plat", Kind: KindPlatform, Scope: "*", Subject: "*", MinTCB: testTCB, Issuer: "root"})
	p.add(Claim{ID: "meas", Kind: KindMeasurement, Scope: "*", Subject: "00ff", Issuer: "root"})

	ev := Evidence{Tenant: "t0", ChipID: "chip-0", TCB: testTCB, HasPlatform: true, Measurement: []byte{0x00, 0xff}}
	cert, err := p.store.Engine().Evaluate(ev, ms(1))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if cert.Decision != "allow" || len(cert.Rules) != 3 {
		t.Fatalf("cert = %+v", cert)
	}
	for i, want := range []string{RuleDomain, RulePlatform, RuleMeasurement} {
		if cert.Rules[i].Rule != want || cert.Rules[i].Outcome != "pass" {
			t.Fatalf("rule %d = %+v, want pass %s", i, cert.Rules[i], want)
		}
	}
	if got := cert.Rules[1].Chain; len(got) != 1 || got[0] != "root" {
		t.Fatalf("platform chain = %v, want [root]", got)
	}
	if cert.Expires != 0 {
		t.Fatalf("unlimited claims must yield no expiry, got %v", cert.Expires)
	}
	if !p.store.Engine().Valid(cert, ms(1000)) {
		t.Fatal("certificate should stay valid while the store is unchanged")
	}
}

func TestEvaluateDenials(t *testing.T) {
	p := newPKI(t)
	p.addSigner("stranger", 99)
	p.add(Claim{ID: "plat", Kind: KindPlatform, Scope: "*", Subject: "*", MinTCB: testTCB, Issuer: "root"})
	p.add(Claim{ID: "meas-ok", Kind: KindMeasurement, Scope: "*", Subject: "00ff", Issuer: "root"})

	eng := p.store.Engine()
	platform := Evidence{Tenant: "t0", ChipID: "chip-0", TCB: testTCB, HasPlatform: true}

	t.Run("unknown-domain", func(t *testing.T) {
		s2 := NewStore()
		_, err := s2.Engine().Evaluate(platform, ms(1))
		wantReason(t, err, RuleDomain, ReasonUnknownDomain)
	})
	t.Run("tcb-below-floor", func(t *testing.T) {
		ev := platform
		ev.TCB = testTCB - 1 // microcode one below the floor
		_, err := eng.Evaluate(ev, ms(1))
		wantReason(t, err, RulePlatform, ReasonTCBFloor)
	})
	t.Run("measurement-untrusted", func(t *testing.T) {
		ev := platform
		ev.Measurement = []byte{0xaa, 0xbb}
		_, err := eng.Evaluate(ev, ms(1))
		wantReason(t, err, RuleMeasurement, ReasonMeasurementUnknown)
	})
	t.Run("claim-forged", func(t *testing.T) {
		c := p.signed(Claim{ID: "meas-bad", Kind: KindMeasurement, Scope: "*", Subject: "0a0b", Issuer: "root"})
		c.SigR.Add(c.SigR, c.SigS) // tamper after signing
		if err := p.store.Inject(c); err != nil {
			t.Fatal(err)
		}
		ev := platform
		ev.Measurement = []byte{0x0a, 0x0b}
		_, err := eng.Evaluate(ev, ms(1))
		wantReason(t, err, RuleMeasurement, ReasonForged)
	})
	t.Run("out-of-scope", func(t *testing.T) {
		// A claim scoped to another tenant, filed where t0's evaluation
		// will see it.
		c := p.signed(Claim{ID: "meas-t9", Kind: KindMeasurement, Scope: "t9", Subject: "0c0d", Issuer: "root"})
		if err := p.store.InjectInto("*", c); err != nil {
			t.Fatal(err)
		}
		ev := platform
		ev.Measurement = []byte{0x0c, 0x0d}
		_, err := eng.Evaluate(ev, ms(1))
		wantReason(t, err, RuleMeasurement, ReasonScope)
	})
	t.Run("issuer-unauthorized", func(t *testing.T) {
		// Validly signed by a registered signer that is not anchored in
		// the domain and holds no delegation.
		c := p.signed(Claim{ID: "meas-stranger", Kind: KindMeasurement, Scope: "*", Subject: "0e0f", Issuer: "stranger"})
		if err := p.store.Inject(c); err != nil {
			t.Fatal(err)
		}
		ev := platform
		ev.Measurement = []byte{0x0e, 0x0f}
		_, err := eng.Evaluate(ev, ms(1))
		wantReason(t, err, RuleMeasurement, ReasonUnauthorized)
	})
	t.Run("platform-revoked", func(t *testing.T) {
		p.add(Claim{ID: "rev-chip-9", Kind: KindRevocation, Scope: "*", Subject: "chip-9", Issuer: "root"})
		ev := platform
		ev.ChipID = "chip-9"
		_, err := eng.Evaluate(ev, ms(1))
		wantReason(t, err, RulePlatform, ReasonRevoked)
	})
}

// TestExpiryBoundaryInstant pins the inclusive-expiry convention: a
// claim is still good at exactly NotAfter and refused one nanosecond
// later — the same boundary the broker applies to challenge nonces.
func TestExpiryBoundaryInstant(t *testing.T) {
	p := newPKI(t)
	p.add(Claim{ID: "plat", Kind: KindPlatform, Scope: "*", Subject: "*", NotAfter: ms(50), Issuer: "root"})
	eng := p.store.Engine()
	ev := Evidence{Tenant: "t0", ChipID: "chip-0", TCB: testTCB, HasPlatform: true}

	cert, err := eng.Evaluate(ev, ms(50))
	if err != nil {
		t.Fatalf("at the boundary instant the claim must still hold: %v", err)
	}
	if cert.Expires != ms(50) {
		t.Fatalf("cert expiry = %v, want %v", cert.Expires, ms(50))
	}
	if !eng.Valid(cert, ms(50)) {
		t.Fatal("certificate must be valid at its own expiry instant")
	}
	if eng.Valid(cert, ms(50)+1) {
		t.Fatal("certificate must be invalid strictly after expiry")
	}
	_, err = eng.Evaluate(ev, ms(50)+1)
	wantReason(t, err, RulePlatform, ReasonExpired)
}

// TestRevocationAtInstant pins the revocation-storm semantics: admission
// flips from allow to deny for every instant strictly after the
// revocation instant, and outstanding certificates die with the store
// version bump.
func TestRevocationAtInstant(t *testing.T) {
	p := newPKI(t)
	p.add(Claim{ID: "plat", Kind: KindPlatform, Scope: "*", Subject: "*", Issuer: "root"})
	eng := p.store.Engine()
	ev := Evidence{Tenant: "t0", ChipID: "chip-0", TCB: testTCB, HasPlatform: true}

	before, err := eng.Evaluate(ev, ms(10))
	if err != nil {
		t.Fatalf("pre-revocation: %v", err)
	}
	if err := p.store.RevokeClaim("*", "plat", ms(20)); err != nil {
		t.Fatal(err)
	}
	// The store mutated: the outstanding certificate is stale even for
	// instants before the revocation.
	if eng.Valid(before, ms(15)) {
		t.Fatal("certificate minted before a store mutation must go stale")
	}
	if _, err := eng.Evaluate(ev, ms(20)); err != nil {
		t.Fatalf("at the revocation instant the claim must still hold: %v", err)
	}
	_, err = eng.Evaluate(ev, ms(20)+1)
	wantReason(t, err, RulePlatform, ReasonExpired)

	st := p.store.Stats()
	if st.Revoked != 1 || st.DenialsByRule[RulePlatform+"/"+string(ReasonExpired)] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDelegationChain(t *testing.T) {
	p := newPKI(t)
	p.addSigner("ops", 2)
	p.addSigner("release-bot", 3)
	// root delegates to ops, ops delegates to release-bot; the bot's
	// delegation expires.
	p.add(Claim{ID: "del-ops", Kind: KindDelegation, Scope: "*", Subject: "ops", Issuer: "root"})
	p.add(Claim{ID: "del-bot", Kind: KindDelegation, Scope: "*", Subject: "release-bot", NotAfter: ms(100), Issuer: "ops"})
	p.add(Claim{ID: "meas", Kind: KindMeasurement, Scope: "*", Subject: "00ff", Issuer: "release-bot"})

	eng := p.store.Engine()
	ev := Evidence{Tenant: "t0", Measurement: []byte{0x00, 0xff}}
	cert, err := eng.Evaluate(ev, ms(1))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	var mr *RuleResult
	for i := range cert.Rules {
		if cert.Rules[i].Rule == RuleMeasurement {
			mr = &cert.Rules[i]
		}
	}
	want := []string{"root", "ops", "release-bot"}
	if mr == nil || len(mr.Chain) != 3 || mr.Chain[0] != want[0] || mr.Chain[1] != want[1] || mr.Chain[2] != want[2] {
		t.Fatalf("delegation chain = %+v, want %v", mr, want)
	}
	// The delegation's expiry propagates into the certificate.
	if cert.Expires != ms(100) {
		t.Fatalf("cert expiry = %v, want the delegation's %v", cert.Expires, ms(100))
	}
	// Past the delegation window the issuer loses authority.
	_, err = eng.Evaluate(ev, ms(100)+1)
	wantReason(t, err, RuleMeasurement, ReasonUnauthorized)
}

func TestAnchorRotation(t *testing.T) {
	p := newPKI(t)
	p.addSigner("root2", 4)
	p.add(Claim{ID: "meas-old", Kind: KindMeasurement, Scope: "*", Subject: "00ff", Issuer: "root"})
	if err := p.store.RotateAnchor("*", "root", "root2", ms(30)); err != nil {
		t.Fatal(err)
	}
	c := p.signed(Claim{ID: "meas-new", Kind: KindMeasurement, Scope: "*", Subject: "11ee", Issuer: "root2"})
	if err := p.store.AddClaim(c); err != nil {
		t.Fatal(err)
	}
	eng := p.store.Engine()
	oldEv := Evidence{Tenant: "t0", Measurement: []byte{0x00, 0xff}}
	newEv := Evidence{Tenant: "t0", Measurement: []byte{0x11, 0xee}}

	// At the rotation instant both anchors are live.
	if _, err := eng.Evaluate(oldEv, ms(30)); err != nil {
		t.Fatalf("old anchor at rotation instant: %v", err)
	}
	if _, err := eng.Evaluate(newEv, ms(30)); err != nil {
		t.Fatalf("new anchor at rotation instant: %v", err)
	}
	// Strictly after, the old root's claims lose their authority —
	// rotating out a compromised anchor revokes everything it signed.
	_, err := eng.Evaluate(oldEv, ms(30)+1)
	wantReason(t, err, RuleMeasurement, ReasonUnauthorized)
	if _, err := eng.Evaluate(newEv, ms(31)); err != nil {
		t.Fatalf("new anchor after rotation: %v", err)
	}
	// Before the rotation the new anchor had no authority yet.
	_, err = eng.Evaluate(newEv, ms(29))
	wantReason(t, err, RuleMeasurement, ReasonUnauthorized)
}

func TestTenantDomainIsolation(t *testing.T) {
	p := newPKI(t)
	p.store.EnsureDomain("t0", "root")
	p.store.EnsureDomain("t1", "root")
	p.add(Claim{ID: "meas-t0", Kind: KindMeasurement, Scope: "t0", Subject: "00ff", Issuer: "root"})
	p.add(Claim{ID: "plat", Kind: KindPlatform, Scope: "*", Subject: "*", Issuer: "root"})

	eng := p.store.Engine()
	ev := Evidence{Tenant: "t0", Measurement: []byte{0x00, 0xff}}
	if _, err := eng.Evaluate(ev, ms(1)); err != nil {
		t.Fatalf("t0 must see its own domain's claim: %v", err)
	}
	ev.Tenant = "t1"
	_, err := eng.Evaluate(ev, ms(1))
	wantReason(t, err, RuleMeasurement, ReasonMeasurementUnknown)
}

func TestPermissiveAllowsEverything(t *testing.T) {
	eng := Permissive()
	for _, ev := range []Evidence{
		{Tenant: "anyone"},
		{Tenant: "t0", ChipID: "chip-42", TCB: 0, HasPlatform: true},
		{Tenant: "t1", ChipID: "x", TCB: testTCB, HasPlatform: true, Measurement: []byte{1, 2, 3}},
	} {
		cert, err := eng.Evaluate(ev, ms(5))
		if err != nil {
			t.Fatalf("Permissive denied %+v: %v", ev, err)
		}
		if cert.Expires != 0 {
			t.Fatalf("Permissive certificates must never expire, got %v", cert.Expires)
		}
		if !eng.Valid(cert, ms(1_000_000)) {
			t.Fatal("Permissive certificate must stay valid forever")
		}
	}
}

func TestStoreVersionAndDuplicates(t *testing.T) {
	p := newPKI(t)
	v0 := p.store.Version()
	p.add(Claim{ID: "a", Kind: KindPlatform, Scope: "*", Subject: "*", Issuer: "root"})
	if p.store.Version() == v0 {
		t.Fatal("AddClaim must bump the version")
	}
	c := p.signed(Claim{ID: "a", Kind: KindPlatform, Scope: "*", Subject: "*", Issuer: "root"})
	if err := p.store.AddClaim(c); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate claim: %v", err)
	}
	if err := p.store.AddClaim(Claim{ID: "b", Issuer: "nobody"}); !errors.Is(err, ErrUnknownSigner) {
		t.Fatalf("unknown signer: %v", err)
	}
	bad := p.signed(Claim{ID: "c", Kind: KindPlatform, Scope: "*", Subject: "*", Issuer: "root"})
	bad.Subject = "mutated-after-signing"
	if err := p.store.AddClaim(bad); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("bad signature: %v", err)
	}
}
