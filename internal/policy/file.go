package policy

// Policy files: the JSON surface cmd/sevf-policy lints and evaluates. A
// file declares signers (by derivation seed — the simulator has no real
// keys to import), trust domains with their anchors, claims (signed at
// load time), canned evidence packages, and policy mutations pinned to
// virtual instants. Everything the loader produces is deterministic
// except signature bytes, which never reach any output.

import (
	"crypto/ecdsa"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/severifast/severifast/internal/psp"
	"github.com/severifast/severifast/internal/sim"
)

// File is one parsed policy file.
type File struct {
	Signers   []FileSigner   `json:"signers"`
	Domains   []FileDomain   `json:"domains"`
	Claims    []FileClaim    `json:"claims"`
	Evidence  []FileEvidence `json:"evidence,omitempty"`
	Mutations []FileMutation `json:"mutations,omitempty"`
}

// FileSigner derives a named P-384 signer from a seed.
type FileSigner struct {
	ID   string `json:"id"`
	Seed int64  `json:"seed"`
}

// FileDomain declares a trust domain and its anchor signers.
type FileDomain struct {
	Name    string   `json:"name"`
	Anchors []string `json:"anchors"`
}

// FileClaim is one claim before signing. MinTCB uses the dotted
// "bootloader.tee.snp.microcode" form; instants are virtual milliseconds.
type FileClaim struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Scope       string `json:"scope"`
	Subject     string `json:"subject"`
	MinTCB      string `json:"min_tcb,omitempty"`
	NotBeforeMS int64  `json:"not_before_ms,omitempty"`
	NotAfterMS  int64  `json:"not_after_ms,omitempty"`
	Note        string `json:"note,omitempty"`
	Issuer      string `json:"issuer"`
}

// FileEvidence is one canned evidence package to evaluate.
type FileEvidence struct {
	Name        string `json:"name"`
	Tenant      string `json:"tenant"`
	Chip        string `json:"chip,omitempty"`
	TCB         string `json:"tcb,omitempty"`
	Measurement string `json:"measurement,omitempty"` // hex, empty = not asserted
	NowMS       int64  `json:"now_ms"`
}

// HasPlatform reports whether the evidence asserts a platform.
func (e *FileEvidence) HasPlatform() bool { return e.Chip != "" }

// FileMutation is one policy mutation applied at a virtual instant
// before every evidence package whose now has reached it.
type FileMutation struct {
	AtMS   int64  `json:"at_ms"`
	Op     string `json:"op"` // "revoke-claim", "revoke-kind", "rotate-anchor"
	Domain string `json:"domain"`
	Claim  string `json:"claim,omitempty"`
	Kind   string `json:"kind,omitempty"`
	Old    string `json:"old,omitempty"`
	New    string `json:"new,omitempty"`
}

// LoadFile reads and parses a policy file.
func LoadFile(path string) (*File, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("policy file %s: %w", path, err)
	}
	return &f, nil
}

// knownKinds for linting.
var knownKinds = map[string]bool{
	string(KindMeasurement): true,
	string(KindPlatform):    true,
	string(KindDelegation):  true,
	string(KindRevocation):  true,
}

var knownMutationOps = map[string]bool{"revoke-claim": true, "revoke-kind": true, "rotate-anchor": true}

// Lint checks a policy file for the mistakes a store would accept
// silently or reject late: unknown issuers and kinds, duplicate IDs,
// inverted validity windows, issuers with no possible authority path,
// malformed measurement subjects, and mutations naming missing claims.
// It returns one finding per problem, deterministically ordered.
func (f *File) Lint() []string {
	var out []string
	signers := make(map[string]bool)
	for i, s := range f.Signers {
		if s.ID == "" {
			out = append(out, fmt.Sprintf("signers[%d]: empty id", i))
			continue
		}
		if signers[s.ID] {
			out = append(out, fmt.Sprintf("signers[%d]: duplicate id %q", i, s.ID))
		}
		signers[s.ID] = true
	}
	anchored := make(map[string]bool) // signer anchored in any domain
	domains := make(map[string]bool)
	for i, d := range f.Domains {
		if d.Name == "" {
			out = append(out, fmt.Sprintf("domains[%d]: empty name", i))
		}
		if domains[d.Name] {
			out = append(out, fmt.Sprintf("domains[%d]: duplicate domain %q", i, d.Name))
		}
		domains[d.Name] = true
		for _, a := range d.Anchors {
			if !signers[a] {
				out = append(out, fmt.Sprintf("domains[%d] (%s): anchor %q is not a declared signer", i, d.Name, a))
			}
			anchored[a] = true
		}
	}
	// A signer is reachable if anchored somewhere or delegated to by a
	// delegation claim (time windows ignored at lint level).
	reachable := make(map[string]bool, len(anchored))
	for a := range anchored {
		reachable[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, c := range f.Claims {
			if c.Kind == string(KindDelegation) && reachable[c.Issuer] && !reachable[c.Subject] {
				reachable[c.Subject] = true
				changed = true
			}
		}
	}
	ids := make(map[string]bool)
	for i, c := range f.Claims {
		where := fmt.Sprintf("claims[%d] (%s)", i, c.ID)
		if c.ID == "" {
			out = append(out, fmt.Sprintf("claims[%d]: empty id", i))
		}
		key := domainNameFor(Claim{Scope: c.Scope}) + "/" + c.ID
		if ids[key] {
			out = append(out, where+": duplicate claim id in its domain")
		}
		ids[key] = true
		if !knownKinds[c.Kind] {
			out = append(out, fmt.Sprintf("%s: unknown kind %q", where, c.Kind))
		}
		if !signers[c.Issuer] {
			out = append(out, fmt.Sprintf("%s: issuer %q is not a declared signer", where, c.Issuer))
		} else if !reachable[c.Issuer] {
			out = append(out, fmt.Sprintf("%s: issuer %q has no anchor or delegation path", where, c.Issuer))
		}
		if c.NotAfterMS != 0 && c.NotAfterMS < c.NotBeforeMS {
			out = append(out, fmt.Sprintf("%s: not_after_ms %d precedes not_before_ms %d", where, c.NotAfterMS, c.NotBeforeMS))
		}
		if c.Kind == string(KindMeasurement) && c.Subject != "*" {
			if _, err := hex.DecodeString(c.Subject); err != nil || len(c.Subject)%2 != 0 {
				out = append(out, fmt.Sprintf("%s: measurement subject is not hex", where))
			}
		}
		if c.MinTCB != "" {
			if _, err := parseDottedTCB(c.MinTCB); err != nil {
				out = append(out, fmt.Sprintf("%s: min_tcb: %v", where, err))
			}
		}
	}
	for i, m := range f.Mutations {
		where := fmt.Sprintf("mutations[%d]", i)
		if !knownMutationOps[m.Op] {
			out = append(out, fmt.Sprintf("%s: unknown op %q", where, m.Op))
			continue
		}
		if m.Op == "revoke-claim" && !ids[m.Domain+"/"+m.Claim] {
			out = append(out, fmt.Sprintf("%s: revoke-claim names missing claim %s/%s", where, m.Domain, m.Claim))
		}
		if m.Op == "rotate-anchor" && (m.Old == "" || m.New == "") {
			out = append(out, fmt.Sprintf("%s: rotate-anchor needs old and new", where))
		}
	}
	return out
}

// BuildStore derives the signers, creates the domains, signs every claim
// with its issuer's derived key, and files them. Claims whose issuer is
// undeclared are injected unsigned — the engine will refuse them with
// the precise reason, which is more useful to a policy author than a
// load failure.
func (f *File) BuildStore() (*Store, error) {
	s := NewStore()
	keys := make(map[string]*signerKey, len(f.Signers))
	for _, fs := range f.Signers {
		// One rng per signer, used only for key derivation and signing:
		// ECDSA consumes a nondeterministic number of bytes, so these
		// streams are never shared with anything else.
		rng := rand.New(rand.NewSource(fs.Seed))
		key := psp.DeriveKey(rng)
		if err := s.AddSigner(fs.ID, &key.PublicKey); err != nil {
			return nil, err
		}
		keys[fs.ID] = &signerKey{key: key, rng: rng}
	}
	for _, d := range f.Domains {
		s.EnsureDomain(d.Name, d.Anchors...)
	}
	for _, fc := range f.Claims {
		c := Claim{
			ID:        fc.ID,
			Kind:      Kind(fc.Kind),
			Scope:     fc.Scope,
			Subject:   fc.Subject,
			NotBefore: msToTime(fc.NotBeforeMS),
			NotAfter:  msToTime(fc.NotAfterMS),
			Note:      fc.Note,
			Issuer:    fc.Issuer,
		}
		if fc.MinTCB != "" {
			tcb, err := parseDottedTCB(fc.MinTCB)
			if err != nil {
				return nil, fmt.Errorf("claim %q: min_tcb: %w", fc.ID, err)
			}
			c.MinTCB = tcb
		}
		sk := keys[fc.Issuer]
		if sk == nil {
			if err := s.Inject(c); err != nil {
				return nil, err
			}
			continue
		}
		if err := SignClaim(&c, sk.key, sk.rng); err != nil {
			return nil, err
		}
		if err := s.AddClaim(c); err != nil {
			return nil, err
		}
	}
	return s, nil
}

type signerKey struct {
	key *ecdsa.PrivateKey
	rng *rand.Rand
}

// Apply performs the mutation against the store.
func (m *FileMutation) Apply(s *Store) error {
	at := msToTime(m.AtMS)
	switch m.Op {
	case "revoke-claim":
		return s.RevokeClaim(m.Domain, m.Claim, at)
	case "revoke-kind":
		s.RevokeKind(m.Domain, Kind(m.Kind), at)
		return nil
	case "rotate-anchor":
		return s.RotateAnchor(m.Domain, m.Old, m.New, at)
	}
	return fmt.Errorf("policy: unknown mutation op %q", m.Op)
}

// Package builds the Evidence an entry asserts.
func (e *FileEvidence) Package() (Evidence, error) {
	ev := Evidence{Tenant: e.Tenant, ChipID: e.Chip, HasPlatform: e.Chip != ""}
	if e.TCB != "" {
		tcb, err := parseDottedTCB(e.TCB)
		if err != nil {
			return ev, fmt.Errorf("evidence %q: tcb: %w", e.Name, err)
		}
		ev.TCB = tcb
	}
	if e.Measurement != "" {
		m, err := hex.DecodeString(e.Measurement)
		if err != nil {
			return ev, fmt.Errorf("evidence %q: measurement: %w", e.Name, err)
		}
		ev.Measurement = m
	}
	return ev, nil
}

func msToTime(ms int64) sim.Time {
	return sim.Time(time.Duration(ms) * time.Millisecond)
}

// parseDottedTCB parses "bootloader.tee.snp.microcode" into the encoded
// layout shared with kbs.TCB (this package cannot import kbs — kbs
// imports it).
func parseDottedTCB(s string) (uint64, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("want 4 dotted components, got %q", s)
	}
	var vals [4]uint8
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("component %d of %q: %w", i, s, err)
		}
		vals[i] = uint8(v)
	}
	return uint64(vals[0])<<56 | uint64(vals[1])<<48 | uint64(vals[2])<<8 | uint64(vals[3]), nil
}
