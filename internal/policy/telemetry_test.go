package policy

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"github.com/severifast/severifast/internal/telemetry"
)

// runInstrumented drives an identical evaluation sequence — grants and
// denials across two tenants, a revocation mid-sequence — against a
// fresh instrumented store, and returns both exporter outputs.
func runInstrumented(t *testing.T) (prom, sum []byte) {
	t.Helper()
	p := newPKI(t)
	reg := telemetry.NewRegistry()
	p.store.Instrument(reg)
	p.add(Claim{ID: "plat", Kind: KindPlatform, Scope: "*", Subject: "*", MinTCB: testTCB, Issuer: "root"})
	p.add(Claim{ID: "meas", Kind: KindMeasurement, Scope: "*", Subject: "00ff", Issuer: "root"})
	eng := p.store.Engine()
	good := Evidence{Tenant: "t0", ChipID: "chip-0", TCB: testTCB, HasPlatform: true, Measurement: []byte{0x00, 0xff}}
	stale := good
	stale.TCB = 0
	stale.Tenant = "t1"
	for i := 0; i < 3; i++ {
		eng.Evaluate(good, ms(int64(i)))
		eng.Evaluate(stale, ms(int64(i)))
	}
	if err := p.store.RevokeClaim("*", "meas", ms(10)); err != nil {
		t.Fatal(err)
	}
	eng.Evaluate(good, ms(11))

	var pb, sb bytes.Buffer
	if err := reg.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSONSummary(&sb); err != nil {
		t.Fatal(err)
	}
	return pb.Bytes(), sb.Bytes()
}

// TestPolicyTelemetryDeterminism pins the per-reason denial counters
// into both exporters and requires byte-identical output across two
// identical runs.
func TestPolicyTelemetryDeterminism(t *testing.T) {
	prom1, sum1 := runInstrumented(t)
	prom2, sum2 := runInstrumented(t)
	if !bytes.Equal(prom1, prom2) {
		t.Fatal("Prometheus export differs across identical runs")
	}
	if !bytes.Equal(sum1, sum2) {
		t.Fatal("JSON summary differs across identical runs")
	}
	for _, want := range []string{
		`severifast_policy_evals_total{decision="allow",tenant="t0"} 3`,
		`severifast_policy_evals_total{decision="deny",tenant="t1"} 3`,
		`severifast_policy_evals_total{decision="deny",tenant="t0"} 1`,
		`severifast_policy_denials_total{reason="tcb-below-floor",rule="platform",tenant="t1"} 3`,
		`severifast_policy_denials_total{reason="claim-expired",rule="measurement",tenant="t0"} 1`,
	} {
		if !strings.Contains(string(prom1), want) {
			t.Errorf("Prometheus export missing %q:\n%s", want, prom1)
		}
	}
	for _, want := range []string{
		"severifast_policy_denials_total",
		"tcb-below-floor",
		"claim-expired",
	} {
		if !strings.Contains(string(sum1), want) {
			t.Errorf("JSON summary missing %q", want)
		}
	}
}

// TestStoreEvaluateRace exercises concurrent evaluation, mutation, and
// claim filing under -race: the store is shared between engine processes
// and cache-publish callbacks in fleet runs.
func TestStoreEvaluateRace(t *testing.T) {
	p := newPKI(t)
	reg := telemetry.NewRegistry()
	p.store.Instrument(reg)
	p.add(Claim{ID: "plat", Kind: KindPlatform, Scope: "*", Subject: "*", Issuer: "root"})
	eng := p.store.Engine()
	ev := Evidence{Tenant: "t0", ChipID: "chip-0", TCB: testTCB, HasPlatform: true}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cert, err := eng.Evaluate(ev, ms(int64(i)))
				if err == nil {
					eng.Valid(cert, ms(int64(i)))
				}
				p.store.Version()
				if i%10 == 0 {
					p.store.Stats()
				}
			}
		}(g)
	}
	claims := make([]Claim, 20)
	for i := range claims {
		claims[i] = p.signed(Claim{ID: "m-" + string(rune('a'+i)), Kind: KindMeasurement, Scope: "*", Subject: "00", Issuer: "root"})
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, c := range claims {
			if err := p.store.AddClaim(c); err != nil {
				t.Error(err)
				return
			}
		}
		p.store.RevokeKind("*", KindMeasurement, ms(1000))
	}()
	wg.Wait()
}
