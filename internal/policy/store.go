package policy

import (
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// Store errors.
var (
	ErrDuplicate     = errors.New("policy: duplicate")
	ErrUnknownSigner = errors.New("policy: unknown signer")
	ErrBadSignature  = errors.New("policy: bad claim signature")
	ErrNotFound      = errors.New("policy: not found")
)

// anchorRec is one root-of-trust window for a domain: the named signer is
// an anchor from From through Until inclusive (Until zero = open-ended).
// Rotation closes the old window and opens a new one at the same instant,
// so an evaluation exactly at the rotation instant accepts both keys —
// the handover has no dead gap and no ambiguity.
type anchorRec struct {
	ID    string
	From  sim.Time
	Until sim.Time
}

func (a anchorRec) active(now sim.Time) bool {
	return now >= a.From && (a.Until == 0 || now <= a.Until)
}

// claimRec wraps a stored claim with store-side metadata. The claim
// itself is immutable once filed — revocation is metadata, never a
// signature rewrite — and the signature verdict is memoized on first
// evaluation so the P-384 verify is paid once per claim, not per boot.
type claimRec struct {
	claim      Claim
	revoked    bool
	revokedAt  sim.Time
	sigChecked bool
	sigOK      bool
}

// effectiveExpiry is the instant after which the record stops being
// valid: the earlier of NotAfter and the revocation instant (zero =
// never).
func (r *claimRec) effectiveExpiry() sim.Time {
	exp := r.claim.NotAfter
	if r.revoked {
		exp = minExpiry(exp, r.revokedAt)
	}
	return exp
}

func (r *claimRec) validAt(now sim.Time) bool {
	if !r.claim.windowValid(now) {
		return false
	}
	return !r.revoked || now <= r.revokedAt
}

// domain is one tenant's trust domain: its anchor windows and claims,
// kept sorted by claim ID so evaluation order is deterministic.
type domain struct {
	name    string
	anchors []anchorRec
	claims  []*claimRec
}

func (d *domain) find(id string) (*claimRec, int) {
	i := sort.Search(len(d.claims), func(i int) bool { return d.claims[i].claim.ID >= id })
	if i < len(d.claims) && d.claims[i].claim.ID == id {
		return d.claims[i], i
	}
	return nil, i
}

// Store holds per-tenant trust domains, the signer registry, and a
// monotonic version that bumps on every mutation. The version is what
// lets downstream caches (the broker's verdict cache, fleet admission
// certificates) notice a revocation storm without subscribing to events:
// a certificate minted under version N is stale the instant the store
// moves to N+1.
//
// The store is mutex-guarded: claims arrive from cache-publish callbacks
// on worker goroutines while engine processes evaluate admissions.
type Store struct {
	mu        sync.Mutex
	signers   map[string]*ecdsa.PublicKey
	domains   map[string]*domain
	version   uint64
	intercept func(Claim) Claim
	reg       *telemetry.Registry
	stats     statsInner
	engine    *Engine
}

type statsInner struct {
	evals           int
	grants          int
	denials         int
	denialsByReason map[string]int
	denialsByRule   map[string]int
}

// Stats is a deterministic snapshot of the store.
type Stats struct {
	Domains int
	Claims  int
	Signers int
	Revoked int
	Version uint64

	Evals           int
	Grants          int
	Denials         int
	DenialsByReason map[string]int
	DenialsByRule   map[string]int
}

// NewStore builds an empty store.
func NewStore() *Store {
	s := &Store{
		signers: make(map[string]*ecdsa.PublicKey),
		domains: make(map[string]*domain),
		stats: statsInner{
			denialsByReason: make(map[string]int),
			denialsByRule:   make(map[string]int),
		},
	}
	s.engine = &Engine{store: s}
	return s
}

// Engine returns the evaluation engine bound to this store.
func (s *Store) Engine() *Engine { return s.engine }

// Instrument mirrors evaluation counters (severifast_policy_*) and
// zero-width evaluation spans into reg. Nil detaches the mirror.
func (s *Store) Instrument(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
}

// AddSigner registers a signer's public key under an ID claims name as
// Issuer.
func (s *Store) AddSigner(id string, pub *ecdsa.PublicKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.signers[id]; ok {
		return fmt.Errorf("%w: signer %q", ErrDuplicate, id)
	}
	s.signers[id] = pub
	s.version++
	return nil
}

// EnsureDomain creates the named trust domain if absent and anchors the
// given signers in it from virtual time zero, open-ended. Repeated calls
// are additive and idempotent per anchor.
func (s *Store) EnsureDomain(name string, anchors ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.domains[name]
	if d == nil {
		d = &domain{name: name}
		s.domains[name] = d
		s.version++
	}
	for _, a := range anchors {
		dup := false
		for _, rec := range d.anchors {
			if rec.ID == a && rec.From == 0 && rec.Until == 0 {
				dup = true
				break
			}
		}
		if !dup {
			d.anchors = append(d.anchors, anchorRec{ID: a})
			s.version++
		}
	}
}

// AddClaim files a claim under the domain its scope names (wildcard
// scopes file under the "*" domain). The issuer must be registered and
// the signature must verify — honest writers get their mistakes back as
// errors. When an Intercept hook is installed it models an adversary on
// the store's write path: the transformed claim is filed verbatim with
// no checks, and the engine's per-claim verification decides its fate at
// evaluation time.
func (s *Store) AddClaim(c Claim) error {
	// The filing domain comes from the claim as written, so an intercept
	// that rescopes it leaves a visibly foreign claim where the honest
	// one would have gone — which is exactly what the engine's
	// out-of-scope check exists to catch.
	name := domainNameFor(c)
	s.mu.Lock()
	hook := s.intercept
	s.mu.Unlock()
	if hook != nil {
		return s.inject(name, hook(c), false)
	}
	s.mu.Lock()
	pub, ok := s.signers[c.Issuer]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: issuer %q", ErrUnknownSigner, c.Issuer)
	}
	if !VerifyClaim(&c, pub) {
		return fmt.Errorf("%w: claim %q", ErrBadSignature, c.ID)
	}
	return s.inject(name, c, true)
}

// Inject files a claim with no checks at all — the hostile-write path
// used by tests and chaos mutations. The engine re-verifies every claim
// it consults, so an injected forgery is caught at evaluation, with the
// precise reason recorded in the decision trace.
func (s *Store) Inject(c Claim) error {
	return s.inject(domainNameFor(c), c, false)
}

// InjectInto files a claim into an explicit domain, checks skipped —
// how a mis-filed or cross-tenant claim is modeled.
func (s *Store) InjectInto(domainName string, c Claim) error {
	return s.inject(domainName, c, false)
}

func domainNameFor(c Claim) string {
	if c.Scope == "" {
		return "*"
	}
	return c.Scope
}

func (s *Store) inject(name string, c Claim, sigVerified bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.domains[name]
	if d == nil {
		d = &domain{name: name}
		s.domains[name] = d
	}
	rec, i := d.find(c.ID)
	if rec != nil {
		return fmt.Errorf("%w: claim %q in domain %q", ErrDuplicate, c.ID, name)
	}
	nr := &claimRec{claim: c, sigChecked: sigVerified, sigOK: sigVerified}
	d.claims = append(d.claims, nil)
	copy(d.claims[i+1:], d.claims[i:])
	d.claims[i] = nr
	s.version++
	return nil
}

// Intercept installs (or clears, with nil) the write-path hook AddClaim
// routes through. See AddClaim.
func (s *Store) Intercept(fn func(Claim) Claim) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.intercept = fn
}

// HasClaim reports whether the domain holds a claim with the ID.
func (s *Store) HasClaim(domainName, id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.domains[domainName]
	if d == nil {
		return false
	}
	rec, _ := d.find(id)
	return rec != nil
}

// ClaimIDs lists the domain's claim IDs in sorted order.
func (s *Store) ClaimIDs(domainName string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.domains[domainName]
	if d == nil {
		return nil
	}
	out := make([]string, len(d.claims))
	for i, rec := range d.claims {
		out[i] = rec.claim.ID
	}
	return out
}

// RevokeClaim marks the claim invalid for every instant strictly after
// `at` (the boundary instant itself still admits — the same inclusive
// convention as claim expiry and broker nonces). The store version bumps,
// so every cached certificate and verdict minted before the revocation
// is invalidated at once: a revocation storm is this call in a loop, not
// a provisioning teardown.
func (s *Store) RevokeClaim(domainName, id string, at sim.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.domains[domainName]
	if d == nil {
		return fmt.Errorf("%w: domain %q", ErrNotFound, domainName)
	}
	rec, _ := d.find(id)
	if rec == nil {
		return fmt.Errorf("%w: claim %q in domain %q", ErrNotFound, id, domainName)
	}
	if rec.revoked {
		rec.revokedAt = minExpiry(rec.revokedAt, at)
	} else {
		rec.revoked = true
		rec.revokedAt = at
	}
	s.version++
	return nil
}

// RevokeKind revokes every claim of the kind in the domain at the
// instant, returning how many it touched. This is the revocation-storm
// primitive: one call distrusts a whole class of claims at a virtual
// instant.
func (s *Store) RevokeKind(domainName string, kind Kind, at sim.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.domains[domainName]
	if d == nil {
		return 0
	}
	n := 0
	for _, rec := range d.claims {
		if rec.claim.Kind != kind {
			continue
		}
		if rec.revoked {
			rec.revokedAt = minExpiry(rec.revokedAt, at)
		} else {
			rec.revoked = true
			rec.revokedAt = at
		}
		n++
	}
	if n > 0 {
		s.version++
	}
	return n
}

// RotateAnchor closes the old anchor's window at `at` and opens the new
// anchor's window from `at`: both keys are live at exactly the rotation
// instant, the old one invalid strictly after. Claims issued by the old
// anchor stop evaluating once it leaves its window — rotating a
// compromised root implicitly revokes everything it signed.
func (s *Store) RotateAnchor(domainName, oldID, newID string, at sim.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.domains[domainName]
	if d == nil {
		return fmt.Errorf("%w: domain %q", ErrNotFound, domainName)
	}
	found := false
	for i := range d.anchors {
		if d.anchors[i].ID == oldID && (d.anchors[i].Until == 0 || d.anchors[i].Until > at) {
			d.anchors[i].Until = at
			found = true
		}
	}
	if !found {
		return fmt.Errorf("%w: anchor %q in domain %q", ErrNotFound, oldID, domainName)
	}
	d.anchors = append(d.anchors, anchorRec{ID: newID, From: at})
	s.version++
	return nil
}

// Version returns the monotonic mutation counter.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Domains:         len(s.domains),
		Signers:         len(s.signers),
		Version:         s.version,
		Evals:           s.stats.evals,
		Grants:          s.stats.grants,
		Denials:         s.stats.denials,
		DenialsByReason: make(map[string]int, len(s.stats.denialsByReason)),
		DenialsByRule:   make(map[string]int, len(s.stats.denialsByRule)),
	}
	for _, d := range s.domains {
		st.Claims += len(d.claims)
		for _, rec := range d.claims {
			if rec.revoked {
				st.Revoked++
			}
		}
	}
	for k, v := range s.stats.denialsByReason {
		st.DenialsByReason[k] = v
	}
	for k, v := range s.stats.denialsByRule {
		st.DenialsByRule[k] = v
	}
	return st
}

// record books one evaluation outcome into stats and telemetry. Called
// with s.mu held.
func (s *Store) record(tenant string, now sim.Time, den *Denial) {
	s.stats.evals++
	decision := "allow"
	if den != nil {
		decision = "deny"
		s.stats.denials++
		s.stats.denialsByReason[string(den.Reason)]++
		s.stats.denialsByRule[den.Rule+"/"+string(den.Reason)]++
		s.reg.Counter("severifast_policy_denials_total",
			telemetry.A("tenant", tenant),
			telemetry.A("rule", den.Rule),
			telemetry.A("reason", string(den.Reason))).Inc()
	} else {
		s.stats.grants++
	}
	s.reg.Counter("severifast_policy_evals_total",
		telemetry.A("tenant", tenant),
		telemetry.A("decision", decision)).Inc()
	s.reg.Record("policy", "policy.evaluate", now, now,
		telemetry.A("tenant", tenant),
		telemetry.A("decision", decision))
}
