// Package policy is the certifier-style trust-domain engine that gates
// every fleet and cluster admission. It replaces hand-provisioned
// reference values with signed policy claims — "measurement M is trusted
// for tenant T", "platform P with TCB ≥ floor is trusted", "signer S may
// issue claims for scope X" — evaluated by a deterministic engine over an
// evidence package (chain verdict, report fields, measured-image digest)
// to yield an admission certificate carrying the full decision trace, the
// delegation chain behind every contributing claim, and a virtual-time
// expiry.
//
// The shape follows the certifier-framework model of attestation-as-
// policy: trust decisions are claims in a store, not code paths, so
// revocation storms, TCB-floor bumps, and signer rotation are policy
// mutations that take effect at a virtual instant ("Insecure Despite
// Proven Updated" is the motivating disaster: a platform generation's
// VCEKs become untrustworthy at once). Per-tenant trust domains make one
// broker serve mutually-distrusting tenants: claims filed under one
// tenant's domain are invisible to every other tenant, while the "*"
// domain holds operator-wide policy.
//
// Everything is virtual-time deterministic: evaluation charges no
// simulated time, consumes no randomness, and iterates claims in sorted
// ID order, so the decision trace for a given (store state, evidence,
// instant) is byte-identical across runs.
//
// Boundary-instant convention, shared with the key broker's nonce check:
// expiry instants are inclusive. A claim is still good at exactly its
// NotAfter (or revocation) instant and invalid strictly after it, just as
// a challenge nonce is still redeemable at exactly Challenge.Expires.
package policy

import (
	"errors"
	"fmt"
	"math/big"

	"github.com/severifast/severifast/internal/sim"
)

// Kind classifies what a claim asserts.
type Kind string

// Claim kinds.
const (
	// KindMeasurement: Subject (hex launch digest) is a trusted
	// measurement for the claim's scope.
	KindMeasurement Kind = "measurement"
	// KindPlatform: platforms whose chip ID matches Subject ("*" for
	// any) running at TCB ≥ MinTCB are trusted.
	KindPlatform Kind = "platform"
	// KindDelegation: the signer named by Subject may issue claims for
	// the claim's scope. Delegations chain: the engine walks them back
	// to a domain anchor and records the path in the certificate.
	KindDelegation Kind = "delegation"
	// KindRevocation: the platform named by Subject (a chip ID) is
	// distrusted while the claim is in force — a positive statement of
	// distrust, which is what makes a revocation storm one policy write
	// instead of a provisioning teardown.
	KindRevocation Kind = "revocation"
)

// Rules, in evaluation order. Every certificate carries one RuleResult
// per rule, so traces are fixed-shape and diffable.
const (
	RuleDomain      = "domain"
	RulePlatform    = "platform"
	RuleMeasurement = "measurement"
)

// Reason classifies a denial. The string form is stable: it keys the
// per-rule denial counters in telemetry and the HTTP wire format.
type Reason string

// Denial reasons.
const (
	ReasonUnknownDomain      Reason = "unknown-domain"        // no trust domain covers the tenant
	ReasonPlatformUntrusted  Reason = "platform-untrusted"    // no platform claim names the chip
	ReasonTCBFloor           Reason = "tcb-below-floor"       // platform claim found, TCB floor unmet
	ReasonRevoked            Reason = "platform-revoked"      // an in-force revocation claim names the chip
	ReasonMeasurementUnknown Reason = "measurement-untrusted" // no measurement claim names the digest
	ReasonExpired            Reason = "claim-expired"         // matching claim outside its validity window
	ReasonForged             Reason = "claim-forged"          // matching claim fails signature verification
	ReasonScope              Reason = "out-of-scope"          // matching claim's scope does not cover the tenant
	ReasonUnauthorized       Reason = "issuer-unauthorized"   // issuer has no anchor/delegation path
)

// ErrDenied matches every policy denial: errors.Is(err, ErrDenied) is
// true exactly when the engine refused an admission.
var ErrDenied = errors.New("policy: denied")

// Sentinels for errors.Is against a specific reason.
var (
	ErrUnknownDomain      = &Denial{Reason: ReasonUnknownDomain}
	ErrPlatformUntrusted  = &Denial{Reason: ReasonPlatformUntrusted}
	ErrTCBFloor           = &Denial{Reason: ReasonTCBFloor}
	ErrRevoked            = &Denial{Reason: ReasonRevoked}
	ErrMeasurementUnknown = &Denial{Reason: ReasonMeasurementUnknown}
	ErrExpired            = &Denial{Reason: ReasonExpired}
	ErrForged             = &Denial{Reason: ReasonForged}
	ErrScope              = &Denial{Reason: ReasonScope}
	ErrUnauthorized       = &Denial{Reason: ReasonUnauthorized}
)

// Denial is a refusal with the rule that refused and why. It matches
// ErrDenied and any Denial with the same Reason under errors.Is.
type Denial struct {
	Rule   string
	Reason Reason
	Detail string
	// Cert, when non-nil, is the full certificate (decision trace) the
	// evaluation produced alongside the refusal.
	Cert *Certificate
}

// Error implements error.
func (d *Denial) Error() string {
	if d.Detail == "" {
		return fmt.Sprintf("policy: denied (%s/%s)", d.Rule, d.Reason)
	}
	return fmt.Sprintf("policy: denied (%s/%s): %s", d.Rule, d.Reason, d.Detail)
}

// Is matches ErrDenied and same-reason Denials.
func (d *Denial) Is(target error) bool {
	if target == ErrDenied {
		return true
	}
	t, ok := target.(*Denial)
	return ok && t.Reason == d.Reason
}

// DenialOf extracts the policy denial from an error chain, or nil.
func DenialOf(err error) *Denial {
	var d *Denial
	if errors.As(err, &d) {
		return d
	}
	return nil
}

// Claim is one signed policy statement. The signature (ECDSA P-384, like
// the PSP certificate chain) covers every field except SigR/SigS via the
// canonical wire encoding, so a claim cannot be re-scoped, re-subjected,
// or extended in time without the issuer's key.
type Claim struct {
	// ID names the claim within its store; revocation targets it.
	ID string
	// Kind selects the rule the claim feeds.
	Kind Kind
	// Scope is the trust domain the claim speaks for ("*" = every
	// tenant). A claim filed in a domain whose tenant its scope does not
	// cover is dead weight: the engine refuses it as out-of-scope.
	Scope string
	// Subject is kind-dependent: a hex launch digest, a chip ID ("*"
	// for any platform), or a delegate signer ID.
	Subject string
	// MinTCB is the encoded TCB floor for platform claims (kbs.TCB
	// layout); zero accepts any TCB.
	MinTCB uint64
	// NotBefore/NotAfter bound validity in virtual time. NotAfter zero
	// means no expiry; the boundary instant itself is valid (see the
	// package comment).
	NotBefore sim.Time
	NotAfter  sim.Time
	// Note is an operator label carried in the signed body.
	Note string
	// Issuer names the signer whose key produced SigR/SigS.
	Issuer string
	SigR   *big.Int
	SigS   *big.Int
}

// windowValid reports whether now falls inside [NotBefore, NotAfter]
// (inclusive at both boundary instants; NotAfter zero = no expiry).
func (c *Claim) windowValid(now sim.Time) bool {
	if now < c.NotBefore {
		return false
	}
	return c.NotAfter == 0 || now <= c.NotAfter
}

// tcbAtLeast compares two encoded TCB vectors component-wise (the
// kbs.TCB layout: bootloader<<56 | tee<<48 | snp<<8 | microcode). A
// platform is only current if every component is current — the same rule
// AMD specifies and internal/kbs enforces.
func tcbAtLeast(got, min uint64) bool {
	return uint8(got>>56) >= uint8(min>>56) &&
		uint8(got>>48) >= uint8(min>>48) &&
		uint8(got>>8) >= uint8(min>>8) &&
		uint8(got) >= uint8(min)
}

// minExpiry folds b into a: the earlier of two expiry instants, where
// zero means "never expires".
func minExpiry(a, b sim.Time) sim.Time {
	if b == 0 {
		return a
	}
	if a == 0 || b < a {
		return b
	}
	return a
}
