package policy

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/severifast/severifast/internal/psp"
)

func sampleClaim(t *testing.T) Claim {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	key := psp.DeriveKey(rng)
	c := Claim{
		ID:        "ref-abc123",
		Kind:      KindMeasurement,
		Scope:     "t0",
		Subject:   "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff",
		MinTCB:    testTCB,
		NotBefore: ms(5),
		NotAfter:  ms(500),
		Note:      "img-0 cold",
		Issuer:    "ops-root",
	}
	if err := SignClaim(&c, key, rng); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClaimWireRoundTrip(t *testing.T) {
	c := sampleClaim(t)
	blob := c.Marshal()
	got, err := UnmarshalClaim(blob)
	if err != nil {
		t.Fatalf("UnmarshalClaim: %v", err)
	}
	if got.ID != c.ID || got.Kind != c.Kind || got.Scope != c.Scope || got.Subject != c.Subject ||
		got.MinTCB != c.MinTCB || got.NotBefore != c.NotBefore || got.NotAfter != c.NotAfter ||
		got.Note != c.Note || got.Issuer != c.Issuer ||
		got.SigR.Cmp(c.SigR) != 0 || got.SigS.Cmp(c.SigS) != 0 {
		t.Fatalf("round trip lost fields:\n got %+v\nwant %+v", got, c)
	}
	if !bytes.Equal(got.Marshal(), blob) {
		t.Fatal("re-marshal is not a fixpoint")
	}
}

func TestClaimWireUnsigned(t *testing.T) {
	c := &Claim{ID: "x", Kind: KindPlatform, Scope: "*", Subject: "*"}
	got, err := UnmarshalClaim(c.Marshal())
	if err != nil {
		t.Fatalf("unsigned claim must round-trip: %v", err)
	}
	if got.SigR.Sign() != 0 || got.SigS.Sign() != 0 {
		t.Fatal("unsigned claim decoded with a signature")
	}
}

func TestClaimWireRejects(t *testing.T) {
	sample := sampleClaim(t)
	valid := sample.Marshal()
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("NOPE"), valid[4:]...),
		"bad version":  append([]byte("SFPC\x07"), valid[5:]...),
		"truncated":    valid[:len(valid)-1],
		"extended":     append(append([]byte{}, valid...), 0),
		"oversized":    make([]byte, maxClaimWire+1),
		"short string": valid[:6],
	}
	for name, blob := range cases {
		if _, err := UnmarshalClaim(blob); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSignatureCoversEveryField(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	key := psp.DeriveKey(rng)
	base := sampleClaim(t)
	if !VerifyClaim(&base, &key.PublicKey) {
		t.Fatal("baseline claim must verify")
	}
	mutations := map[string]func(*Claim){
		"id":        func(c *Claim) { c.ID = "other" },
		"kind":      func(c *Claim) { c.Kind = KindPlatform },
		"scope":     func(c *Claim) { c.Scope = "t1" },
		"subject":   func(c *Claim) { c.Subject = "ff" },
		"mintcb":    func(c *Claim) { c.MinTCB++ },
		"notbefore": func(c *Claim) { c.NotBefore++ },
		"notafter":  func(c *Claim) { c.NotAfter++ },
		"note":      func(c *Claim) { c.Note = "z" },
		"issuer":    func(c *Claim) { c.Issuer = "mallory" },
	}
	for name, mutate := range mutations {
		c := base
		mutate(&c)
		if VerifyClaim(&c, &key.PublicKey) {
			t.Errorf("mutating %s did not break the signature", name)
		}
	}
}
