package policy

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"math/big"
	"net/http"

	"github.com/severifast/severifast/internal/sim"
)

// The HTTP face of the policy store, mirroring kbs/server.go: virtual
// time travels in the request body (the store has no clock of its own),
// denials come back as 403 with a JSON {rule, reason, detail} body, and
// claims cross the wire in their canonical signed encoding — the server
// never re-signs, so a tampered claim arrives exactly as tampered.

type signerRequest struct {
	ID   string `json:"id"`
	PubX string `json:"pub_x"` // hex, P-384 field element
	PubY string `json:"pub_y"`
}

type domainRequest struct {
	Name    string   `json:"name"`
	Anchors []string `json:"anchors"`
}

type claimRequest struct {
	Claim string `json:"claim"` // hex of Claim.Marshal()
}

type revokeClaimRequest struct {
	Domain string `json:"domain"`
	Claim  string `json:"claim"`
	At     int64  `json:"at"`
}

type rotateRequest struct {
	Domain string `json:"domain"`
	Old    string `json:"old"`
	New    string `json:"new"`
	At     int64  `json:"at"`
}

type evaluateRequest struct {
	Tenant      string `json:"tenant"`
	ChipID      string `json:"chip_id"`
	TCB         uint64 `json:"tcb"`
	HasPlatform bool   `json:"has_platform"`
	Measurement string `json:"measurement,omitempty"` // hex, empty = not asserted
	Now         int64  `json:"now"`
}

type policyDenialBody struct {
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
	Detail string `json:"detail"`
}

// Handler exposes the store over HTTP: POST /signer, /domain, /claim,
// /revoke-claim, /rotate-anchor, /evaluate; GET /stats.
func (s *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/signer", func(w http.ResponseWriter, r *http.Request) {
		var req signerRequest
		if !readJSON(w, r, &req) {
			return
		}
		x, errX := hex.DecodeString(req.PubX)
		y, errY := hex.DecodeString(req.PubY)
		if errX != nil || errY != nil || len(x) != 48 || len(y) != 48 {
			http.Error(w, "pub_x/pub_y: want 48 hex-encoded bytes each", http.StatusBadRequest)
			return
		}
		pub := &ecdsa.PublicKey{Curve: elliptic.P384(), X: new(big.Int).SetBytes(x), Y: new(big.Int).SetBytes(y)}
		if err := s.AddSigner(req.ID, pub); err != nil {
			writePolicyErr(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("/domain", func(w http.ResponseWriter, r *http.Request) {
		var req domainRequest
		if !readJSON(w, r, &req) {
			return
		}
		if req.Name == "" {
			http.Error(w, "name: required", http.StatusBadRequest)
			return
		}
		s.EnsureDomain(req.Name, req.Anchors...)
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("/claim", func(w http.ResponseWriter, r *http.Request) {
		var req claimRequest
		if !readJSON(w, r, &req) {
			return
		}
		raw, err := hex.DecodeString(req.Claim)
		if err != nil {
			http.Error(w, "claim hex: "+err.Error(), http.StatusBadRequest)
			return
		}
		c, err := UnmarshalClaim(raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.AddClaim(*c); err != nil {
			writePolicyErr(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("/revoke-claim", func(w http.ResponseWriter, r *http.Request) {
		var req revokeClaimRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := s.RevokeClaim(req.Domain, req.Claim, sim.Time(req.At)); err != nil {
			writePolicyErr(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("/rotate-anchor", func(w http.ResponseWriter, r *http.Request) {
		var req rotateRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := s.RotateAnchor(req.Domain, req.Old, req.New, sim.Time(req.At)); err != nil {
			writePolicyErr(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("/evaluate", func(w http.ResponseWriter, r *http.Request) {
		var req evaluateRequest
		if !readJSON(w, r, &req) {
			return
		}
		ev := Evidence{Tenant: req.Tenant, ChipID: req.ChipID, TCB: req.TCB, HasPlatform: req.HasPlatform}
		if req.Measurement != "" {
			m, err := hex.DecodeString(req.Measurement)
			if err != nil {
				http.Error(w, "measurement hex: "+err.Error(), http.StatusBadRequest)
				return
			}
			ev.Measurement = m
		}
		cert, err := s.engine.Evaluate(ev, sim.Time(req.Now))
		if err != nil {
			writePolicyErr(w, err)
			return
		}
		writeJSON(w, cert)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	return mux
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		http.Error(w, "json: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writePolicyErr maps an engine denial to 403 with its rule and reason on
// the wire, store-API misuse (duplicate, unknown, bad signature) to 400,
// and anything else to 500.
func writePolicyErr(w http.ResponseWriter, err error) {
	var d *Denial
	if errors.As(err, &d) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		_ = json.NewEncoder(w).Encode(policyDenialBody{Rule: d.Rule, Reason: string(d.Reason), Detail: d.Detail})
		return
	}
	if errors.Is(err, ErrDuplicate) || errors.Is(err, ErrUnknownSigner) ||
		errors.Is(err, ErrBadSignature) || errors.Is(err, ErrNotFound) {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}
