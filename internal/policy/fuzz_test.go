package policy

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/severifast/severifast/internal/psp"
)

// FuzzClaimWire feeds hostile bytes to the claim parser — the bytes an
// HTTP policy store accepts from the network. It must never panic; the
// total input is bounded before any allocation; and whatever parses must
// round-trip losslessly, because the encoding is canonical: a signature
// speaks for exactly one byte string, so Marshal(Unmarshal(b)) == b for
// every accepted b.
func FuzzClaimWire(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	key := psp.DeriveKey(rng)
	c := Claim{
		ID:        "ref-1",
		Kind:      KindMeasurement,
		Scope:     "t0",
		Subject:   "00ff",
		MinTCB:    testTCB,
		NotBefore: ms(1),
		NotAfter:  ms(99),
		Note:      "seed",
		Issuer:    "root",
	}
	if err := SignClaim(&c, key, rng); err != nil {
		f.Fatal(err)
	}
	valid := c.Marshal()
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:5])
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte{}, valid...), 0))
	for _, off := range []int{0, 4, 6, len(valid) - 97, len(valid) - 1} {
		mutated := append([]byte{}, valid...)
		mutated[off] ^= 0xFF
		f.Add(mutated)
	}
	f.Add((&Claim{Kind: KindDelegation, Scope: "*", Subject: "ops"}).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		claim, err := UnmarshalClaim(data)
		if err != nil {
			return
		}
		out := claim.Marshal()
		if !bytes.Equal(out, data) {
			t.Fatalf("claim round trip not lossless:\n in  %x\n out %x", data, out)
		}
		again, err := UnmarshalClaim(out)
		if err != nil {
			t.Fatalf("re-unmarshal of marshaled claim failed: %v", err)
		}
		if again.ID != claim.ID || again.Kind != claim.Kind || again.Scope != claim.Scope ||
			again.Subject != claim.Subject || again.MinTCB != claim.MinTCB ||
			again.NotBefore != claim.NotBefore || again.NotAfter != claim.NotAfter ||
			again.Note != claim.Note || again.Issuer != claim.Issuer ||
			again.SigR.Cmp(claim.SigR) != 0 || again.SigS.Cmp(claim.SigS) != 0 {
			t.Fatal("re-unmarshaled claim differs")
		}
	})
}
