package policy

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postJSON drives one handler request and returns the recorder.
func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestServerEndToEnd(t *testing.T) {
	p := newPKI(t)
	h := p.store.Handler()

	// Register a second signer over the wire and anchor it in a new
	// domain.
	p.addSigner("ops", 21)
	pub := p.keys["ops"].key.PublicKey
	var x, y [48]byte
	pub.X.FillBytes(x[:])
	pub.Y.FillBytes(y[:])
	// Re-adding over HTTP must conflict with the in-process registration.
	w := postJSON(t, h, "/signer", fmt.Sprintf(`{"id":"ops","pub_x":%q,"pub_y":%q}`,
		hex.EncodeToString(x[:]), hex.EncodeToString(y[:])))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("duplicate signer = %d, want 400", w.Code)
	}
	w = postJSON(t, h, "/domain", `{"name":"t0","anchors":["ops"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/domain = %d: %s", w.Code, w.Body)
	}

	// File a signed claim through the wire encoding.
	c := p.signed(Claim{ID: "meas", Kind: KindMeasurement, Scope: "t0", Subject: "00ff", Issuer: "ops"})
	w = postJSON(t, h, "/claim", fmt.Sprintf(`{"claim":%q}`, hex.EncodeToString(c.Marshal())))
	if w.Code != http.StatusOK {
		t.Fatalf("/claim = %d: %s", w.Code, w.Body)
	}

	// Evaluate: measurement-only evidence for t0 passes.
	w = postJSON(t, h, "/evaluate", `{"tenant":"t0","measurement":"00ff","now":1000}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/evaluate = %d: %s", w.Code, w.Body)
	}
	var cert Certificate
	if err := json.Unmarshal(w.Body.Bytes(), &cert); err != nil {
		t.Fatal(err)
	}
	if cert.Decision != "allow" {
		t.Fatalf("cert = %+v", cert)
	}

	// Revoke the claim at an instant; evaluation after it flips to a 403
	// with rule and reason on the wire.
	w = postJSON(t, h, "/revoke-claim", `{"domain":"t0","claim":"meas","at":2000}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/revoke-claim = %d: %s", w.Code, w.Body)
	}
	w = postJSON(t, h, "/evaluate", `{"tenant":"t0","measurement":"00ff","now":2001}`)
	if w.Code != http.StatusForbidden {
		t.Fatalf("post-revocation /evaluate = %d, want 403", w.Code)
	}
	var den policyDenialBody
	if err := json.Unmarshal(w.Body.Bytes(), &den); err != nil {
		t.Fatal(err)
	}
	if den.Rule != RuleMeasurement || den.Reason != string(ReasonExpired) {
		t.Fatalf("denial body = %+v", den)
	}
}

// TestServerErrorPaths mirrors the kbs server's table: malformed JSON,
// wrong method, oversized bodies, and bad hex all fail with the right
// status before touching the store.
func TestServerErrorPaths(t *testing.T) {
	p := newPKI(t)
	h := p.store.Handler()
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"wrong method", http.MethodGet, "/claim", "", http.StatusMethodNotAllowed},
		{"malformed json", http.MethodPost, "/claim", "{not json", http.StatusBadRequest},
		{"oversized body", http.MethodPost, "/claim", `{"claim":"` + strings.Repeat("a", 1<<21) + `"}`, http.StatusBadRequest},
		{"bad claim hex", http.MethodPost, "/claim", `{"claim":"zz"}`, http.StatusBadRequest},
		{"bad claim wire", http.MethodPost, "/claim", `{"claim":"00ff"}`, http.StatusBadRequest},
		{"empty domain name", http.MethodPost, "/domain", `{"name":""}`, http.StatusBadRequest},
		{"bad signer key", http.MethodPost, "/signer", `{"id":"x","pub_x":"00","pub_y":"00"}`, http.StatusBadRequest},
		{"revoke unknown domain", http.MethodPost, "/revoke-claim", `{"domain":"nope","claim":"c","at":1}`, http.StatusBadRequest},
		{"rotate unknown anchor", http.MethodPost, "/rotate-anchor", `{"domain":"*","old":"ghost","new":"n","at":1}`, http.StatusBadRequest},
		{"bad measurement hex", http.MethodPost, "/evaluate", `{"tenant":"t0","measurement":"xy","now":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != tc.want {
				t.Fatalf("%s %s = %d, want %d (%s)", tc.method, tc.path, w.Code, tc.want, w.Body)
			}
		})
	}

	// A store with no domain at all denies every tenant as a 403 with
	// the unknown-domain reason — an engine denial, not API misuse.
	t.Run("unknown tenant domain", func(t *testing.T) {
		w := postJSON(t, NewStore().Handler(), "/evaluate", `{"tenant":"ghost","now":1}`)
		if w.Code != http.StatusForbidden {
			t.Fatalf("/evaluate = %d, want 403 (%s)", w.Code, w.Body)
		}
		var den policyDenialBody
		if err := json.Unmarshal(w.Body.Bytes(), &den); err != nil {
			t.Fatal(err)
		}
		if den.Reason != string(ReasonUnknownDomain) {
			t.Fatalf("denial = %+v", den)
		}
	})
}
