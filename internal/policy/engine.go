package policy

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"github.com/severifast/severifast/internal/psp"
	"github.com/severifast/severifast/internal/sim"
)

// maxDelegationDepth bounds the delegation walk from a claim's issuer
// back to a domain anchor.
const maxDelegationDepth = 8

// Evidence is what an admission presents to the engine. Fields are
// optional by stage: a pre-boot fleet admission asserts only tenant and
// platform, while a broker redemption additionally asserts the measured
// launch digest from a verified report. The engine evaluates exactly the
// rules the evidence asserts and records the rest as skipped, so the
// certificate's shape is the same either way.
type Evidence struct {
	// Tenant selects the trust domain (plus the "*" operator domain).
	Tenant string
	// ChipID and TCB describe the platform; HasPlatform marks them
	// asserted (a zero TCB is a legal assertion, not an absence).
	ChipID      string
	TCB         uint64
	HasPlatform bool
	// Measurement is the launch digest, nil when not asserted.
	Measurement []byte
}

// RuleResult is one rule's entry in the decision trace.
type RuleResult struct {
	Rule    string `json:"rule"`
	Outcome string `json:"outcome"` // "pass", "deny", or "skip"
	Reason  string `json:"reason,omitempty"`
	// ClaimID names the claim that decided the rule (granted it, or was
	// the first candidate refused).
	ClaimID string `json:"claim,omitempty"`
	// Chain is the delegation path behind the deciding claim, anchor
	// first, issuer last.
	Chain  []string `json:"chain,omitempty"`
	Detail string   `json:"detail,omitempty"`
}

// Certificate is the admission decision with its full trace. It is
// valid while the store version it was minted under still stands and
// virtual time has not passed its expiry; Engine.Valid checks both, so a
// revocation storm (a store mutation) invalidates every outstanding
// certificate at once.
type Certificate struct {
	Tenant   string       `json:"tenant"`
	Decision string       `json:"decision"` // "allow" or "deny"
	Rules    []RuleResult `json:"rules"`
	// Expires is the earliest expiry instant among contributing claims,
	// anchors, and delegations (zero = no expiry). The boundary instant
	// is valid, per the package convention.
	Expires sim.Time `json:"expires_ns"`
	Version uint64   `json:"version"`
	At      sim.Time `json:"at_ns"`
}

// Engine evaluates evidence against its store. It is pure over (store
// state, evidence, instant): no randomness, no virtual-time charges,
// claims consulted in sorted ID order — the decision trace is
// byte-identical across runs.
type Engine struct {
	store *Store
}

// Store returns the engine's backing store.
func (e *Engine) Store() *Store { return e.store }

// Valid reports whether a certificate still stands: minted under the
// store's current version, decision "allow", and not past its expiry
// instant.
func (e *Engine) Valid(cert *Certificate, now sim.Time) bool {
	if cert == nil || cert.Decision != "allow" {
		return false
	}
	s := e.store
	s.mu.Lock()
	v := s.version
	s.mu.Unlock()
	return cert.Version == v && (cert.Expires == 0 || now <= cert.Expires)
}

// Evaluate runs the rule sequence — domain, platform, measurement — over
// the evidence at a virtual instant. It returns the certificate in both
// outcomes; on denial the error is a *Denial carrying the certificate,
// so callers can log the full trace of a refusal.
func (e *Engine) Evaluate(ev Evidence, now sim.Time) (*Certificate, error) {
	s := e.store
	s.mu.Lock()
	defer s.mu.Unlock()

	cert := &Certificate{Tenant: ev.Tenant, Decision: "allow", Version: s.version, At: now}
	refuse := func(rule string, reason Reason, claimID, detail string) (*Certificate, error) {
		cert.Decision = "deny"
		cert.Expires = 0
		cert.Rules = append(cert.Rules, RuleResult{
			Rule: rule, Outcome: "deny", Reason: string(reason), ClaimID: claimID, Detail: detail,
		})
		d := &Denial{Rule: rule, Reason: reason, Detail: detail, Cert: cert}
		s.record(ev.Tenant, now, d)
		return cert, d
	}

	// Rule 1: some trust domain must cover the tenant. The tenant's own
	// domain is consulted first, then the "*" operator domain — claims
	// filed under one tenant never speak for another.
	var doms []*domain
	if d := s.domains[ev.Tenant]; d != nil && ev.Tenant != "" {
		doms = append(doms, d)
	}
	if d := s.domains["*"]; d != nil && ev.Tenant != "*" {
		doms = append(doms, d)
	}
	if len(doms) == 0 {
		return refuse(RuleDomain, ReasonUnknownDomain, "",
			fmt.Sprintf("no trust domain covers tenant %q", ev.Tenant))
	}
	names := make([]string, len(doms))
	for i, d := range doms {
		names[i] = d.name
	}
	cert.Rules = append(cert.Rules, RuleResult{
		Rule: RuleDomain, Outcome: "pass", Detail: "domains " + strings.Join(names, ","),
	})

	// Rule 2: the platform. In-force revocation claims win over any
	// platform claim — distrust is a positive statement, not an absence.
	if !ev.HasPlatform {
		cert.Rules = append(cert.Rules, RuleResult{Rule: RulePlatform, Outcome: "skip"})
	} else {
		for _, d := range doms {
			for _, rec := range d.claims {
				if rec.claim.Kind != KindRevocation || rec.claim.Subject != ev.ChipID {
					continue
				}
				if chain, _, why := s.check(d, rec, ev.Tenant, now); why == "" {
					res, err := refuse(RulePlatform, ReasonRevoked, rec.claim.ID,
						fmt.Sprintf("chip %q revoked", ev.ChipID))
					res.Rules[len(res.Rules)-1].Chain = chain
					return res, err
				}
				// A revocation filed to come into force later (NotBefore in
				// the future) bounds the certificate's life to the last
				// instant before it bites: without this, a verdict cached
				// between the filing and the in-force instant would outlive
				// the revocation, since the store version only bumps at
				// filing time.
				if nb := rec.claim.NotBefore; now < nb {
					cert.Expires = minExpiry(cert.Expires, nb-1)
				}
			}
		}
		pass, firstReason, firstID, firstDetail := RuleResult{}, Reason(""), "", ""
		granted := false
		for _, d := range doms {
			if granted {
				break
			}
			for _, rec := range d.claims {
				c := &rec.claim
				if c.Kind != KindPlatform || (c.Subject != "*" && c.Subject != ev.ChipID) {
					continue
				}
				chain, expiry, why := s.check(d, rec, ev.Tenant, now)
				if why == "" && !tcbAtLeast(ev.TCB, c.MinTCB) {
					why = ReasonTCBFloor
				}
				if why != "" {
					if firstReason == "" {
						firstReason, firstID = why, c.ID
						firstDetail = fmt.Sprintf("claim %q refused for chip %q", c.ID, ev.ChipID)
						if why == ReasonTCBFloor {
							firstDetail = fmt.Sprintf("platform TCB %#x below claim %q floor %#x", ev.TCB, c.ID, c.MinTCB)
						}
					}
					continue
				}
				pass = RuleResult{Rule: RulePlatform, Outcome: "pass", ClaimID: c.ID, Chain: chain,
					Detail: fmt.Sprintf("chip %q at TCB %#x", ev.ChipID, ev.TCB)}
				cert.Expires = minExpiry(cert.Expires, expiry)
				granted = true
				break
			}
		}
		if !granted {
			if firstReason == "" {
				firstReason = ReasonPlatformUntrusted
				firstDetail = fmt.Sprintf("no platform claim names chip %q", ev.ChipID)
			}
			return refuse(RulePlatform, firstReason, firstID, firstDetail)
		}
		cert.Rules = append(cert.Rules, pass)
	}

	// Rule 3: the measurement.
	if ev.Measurement == nil {
		cert.Rules = append(cert.Rules, RuleResult{Rule: RuleMeasurement, Outcome: "skip"})
	} else {
		digest := hex.EncodeToString(ev.Measurement)
		pass, firstReason, firstID, firstDetail := RuleResult{}, Reason(""), "", ""
		granted := false
		for _, d := range doms {
			if granted {
				break
			}
			for _, rec := range d.claims {
				c := &rec.claim
				if c.Kind != KindMeasurement || (c.Subject != "*" && c.Subject != digest) {
					continue
				}
				chain, expiry, why := s.check(d, rec, ev.Tenant, now)
				if why != "" {
					if firstReason == "" {
						firstReason, firstID = why, c.ID
						firstDetail = fmt.Sprintf("claim %q refused for digest %.16s", c.ID, digest)
					}
					continue
				}
				pass = RuleResult{Rule: RuleMeasurement, Outcome: "pass", ClaimID: c.ID, Chain: chain,
					Detail: fmt.Sprintf("digest %.16s", digest)}
				cert.Expires = minExpiry(cert.Expires, expiry)
				granted = true
				break
			}
		}
		if !granted {
			if firstReason == "" {
				firstReason = ReasonMeasurementUnknown
				firstDetail = fmt.Sprintf("launch digest %.16s not trusted", digest)
			}
			return refuse(RuleMeasurement, firstReason, firstID, firstDetail)
		}
		cert.Rules = append(cert.Rules, pass)
	}

	s.record(ev.Tenant, now, nil)
	return cert, nil
}

// check runs the full validity sequence over one claim record for a
// tenant at an instant: scope, validity window (including revocation),
// signature (memoized), and issuer authority (anchor or delegation
// chain). It returns the delegation chain and the record's folded expiry
// on success, or the refusing Reason. Called with s.mu held.
func (s *Store) check(d *domain, rec *claimRec, tenant string, now sim.Time) ([]string, sim.Time, Reason) {
	c := &rec.claim
	if !scopeCovers(c.Scope, tenant) {
		return nil, 0, ReasonScope
	}
	if !rec.validAt(now) {
		return nil, 0, ReasonExpired
	}
	if !s.sigValid(rec) {
		return nil, 0, ReasonForged
	}
	chain, anchorExp, ok := s.authority(d, c.Issuer, tenant, now, 0, nil)
	if !ok {
		return nil, 0, ReasonUnauthorized
	}
	return chain, minExpiry(rec.effectiveExpiry(), anchorExp), ""
}

// sigValid verifies the record's signature once and memoizes the
// verdict; the claim is immutable after filing, so the memo is sound.
// Called with s.mu held.
func (s *Store) sigValid(rec *claimRec) bool {
	if !rec.sigChecked {
		pub := s.signers[rec.claim.Issuer]
		rec.sigOK = pub != nil && VerifyClaim(&rec.claim, pub)
		rec.sigChecked = true
	}
	return rec.sigOK
}

// authority resolves an issuer back to a domain anchor: directly when an
// anchor window covers the instant, otherwise through delegation claims
// ("signer S may issue claims for scope X"), walked breadth-first in
// sorted claim order with a depth bound and cycle guard. The returned
// chain lists the path anchor-first; the expiry folds every window on
// the path. Called with s.mu held.
func (s *Store) authority(d *domain, issuer, tenant string, now sim.Time, depth int, seen map[string]bool) ([]string, sim.Time, bool) {
	for _, a := range d.anchors {
		if a.ID == issuer && a.active(now) {
			return []string{issuer}, a.Until, true
		}
	}
	if depth >= maxDelegationDepth || seen[issuer] {
		return nil, 0, false
	}
	if seen == nil {
		seen = make(map[string]bool, 4)
	}
	seen[issuer] = true
	for _, rec := range d.claims {
		c := &rec.claim
		if c.Kind != KindDelegation || c.Subject != issuer {
			continue
		}
		if !scopeCovers(c.Scope, tenant) || !rec.validAt(now) || !s.sigValid(rec) {
			continue
		}
		parent, parentExp, ok := s.authority(d, c.Issuer, tenant, now, depth+1, seen)
		if !ok {
			continue
		}
		exp := minExpiry(parentExp, rec.effectiveExpiry())
		return append(parent, issuer), exp, true
	}
	return nil, 0, false
}

// scopeCovers reports whether a claim scope speaks for a tenant.
func scopeCovers(scope, tenant string) bool {
	return scope == "*" || scope == tenant
}

// Permissive returns the shared default-allow engine: one wildcard
// domain whose two claims trust every platform and every measurement,
// with no expiry and no telemetry. It is what fleet and cluster gates
// fall back to when no policy is configured, so every admission flows
// through Evaluate while the default behaviour — and every golden-pinned
// virtual-time artifact — is unchanged.
func Permissive() *Engine {
	permissiveOnce.Do(func() {
		s := NewStore()
		// The signing rng is private to this block; ECDSA consumes a
		// nondeterministic number of bytes, so it must never be shared
		// with other deterministic draws.
		rng := rand.New(rand.NewSource(0x7065726d))
		key := psp.DeriveKey(rng)
		if err := s.AddSigner("permissive-root", &key.PublicKey); err != nil {
			panic(err.Error())
		}
		s.EnsureDomain("*", "permissive-root")
		for _, c := range []Claim{
			{ID: "allow-any-platform", Kind: KindPlatform, Scope: "*", Subject: "*", Note: "default allow"},
			{ID: "allow-any-measurement", Kind: KindMeasurement, Scope: "*", Subject: "*", Note: "default allow"},
		} {
			c.Issuer = "permissive-root"
			if err := SignClaim(&c, key, rng); err != nil {
				panic(err.Error())
			}
			if err := s.AddClaim(c); err != nil {
				panic(err.Error())
			}
		}
		permissiveEngine = s.Engine()
	})
	return permissiveEngine
}

var (
	permissiveOnce   sync.Once
	permissiveEngine *Engine
)
