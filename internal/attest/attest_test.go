package attest

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/psp"
	"github.com/severifast/severifast/internal/sev"
)

// launchGuest boots a minimal launch context and returns the platform,
// its context, and the final digest.
func launchGuest(t *testing.T, seed int64, level sev.Level, policy sev.Policy) (*psp.PSP, *psp.GuestContext, [32]byte) {
	t.Helper()
	p := psp.New(costmodel.Unit(), seed)
	mem := guestmem.New(1 << 20)
	ctx, err := p.LaunchStart(nil, mem, level, policy)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.HostWrite(0x1000, []byte("boot verifier image")); err != nil {
		t.Fatal(err)
	}
	if err := ctx.LaunchUpdateData(nil, 0x1000, 19, sev.PageNormal); err != nil {
		t.Fatal(err)
	}
	digest, err := ctx.LaunchFinish(nil)
	if err != nil {
		t.Fatal(err)
	}
	return p, ctx, digest
}

func TestHappyPathReleasesSecret(t *testing.T) {
	platform, ctx, digest := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	secret := []byte("disk encryption key 0123456789ab")
	owner := NewOwner(platform.VerificationKey(), secret, rand.New(rand.NewSource(7)))
	owner.Allow(digest)

	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := owner.HandleReport(report.Marshal(), agent.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	got, err := agent.Unwrap(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(secret) {
		t.Fatal("unwrapped secret differs")
	}
}

func TestUnknownMeasurementRefused(t *testing.T) {
	platform, ctx, _ := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	owner := NewOwner(platform.VerificationKey(), []byte("s"), rand.New(rand.NewSource(7)))
	// Nothing allowed.
	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.HandleReport(report.Marshal(), agent.PublicKey()); !errors.Is(err, ErrMeasurement) {
		t.Fatalf("err = %v, want ErrMeasurement", err)
	}
}

func TestForgedSignatureRefused(t *testing.T) {
	platform, ctx, digest := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	owner := NewOwner(platform.VerificationKey(), []byte("s"), rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	raw := report.Marshal()
	raw[len(raw)-1] ^= 0xFF // corrupt the signature
	if _, err := owner.HandleReport(raw, agent.PublicKey()); !errors.Is(err, ErrSignature) {
		t.Fatalf("err = %v, want ErrSignature", err)
	}
}

func TestWrongPlatformRefused(t *testing.T) {
	_, ctx, digest := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	other := psp.New(costmodel.Unit(), 2)
	owner := NewOwner(other.VerificationKey(), []byte("s"), rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.HandleReport(report.Marshal(), agent.PublicKey()); !errors.Is(err, ErrSignature) {
		t.Fatalf("err = %v, want ErrSignature", err)
	}
}

func TestWeakPolicyRefused(t *testing.T) {
	weak := sev.Policy{ESRequired: true} // missing NoDebug/NoKeySharing
	platform, ctx, digest := launchGuest(t, 1, sev.SNP, weak)
	owner := NewOwner(platform.VerificationKey(), []byte("s"), rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.HandleReport(report.Marshal(), agent.PublicKey()); !errors.Is(err, ErrPolicy) {
		t.Fatalf("err = %v, want ErrPolicy", err)
	}
}

func TestLowLevelRefused(t *testing.T) {
	pol := sev.Policy{NoDebug: true, NoKeySharing: true}
	platform, ctx, digest := launchGuest(t, 1, sev.SEV, pol)
	owner := NewOwner(platform.VerificationKey(), []byte("s"), rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	owner.RequirePolicy(pol)
	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.HandleReport(report.Marshal(), agent.PublicKey()); !errors.Is(err, ErrLevel) {
		t.Fatalf("err = %v, want ErrLevel", err)
	}
	owner.RequireLevel(sev.SEV)
	if _, err := owner.HandleReport(report.Marshal(), agent.PublicKey()); err != nil {
		t.Fatalf("lowered requirement still refused: %v", err)
	}
}

func TestKeySubstitutionRefused(t *testing.T) {
	// A MITM swapping the guest public key must fail the binding check.
	platform, ctx, digest := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	owner := NewOwner(platform.VerificationKey(), []byte("s"), rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	agent := NewAgentSeeded(99)
	mitm := NewAgentSeeded(666)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.HandleReport(report.Marshal(), mitm.PublicKey()); !errors.Is(err, ErrBinding) {
		t.Fatalf("err = %v, want ErrBinding", err)
	}
}

func TestWrongAgentCannotUnwrap(t *testing.T) {
	platform, ctx, digest := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	owner := NewOwner(platform.VerificationKey(), []byte("secret!"), rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := owner.HandleReport(report.Marshal(), agent.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	eavesdropper := NewAgentSeeded(1234)
	if _, err := eavesdropper.Unwrap(bundle); err == nil {
		t.Fatal("eavesdropper decrypted the secret")
	}
	// Tampered ciphertext must also fail (GCM).
	bundle.Ciphertext[0] ^= 1
	if _, err := agent.Unwrap(bundle); err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
}

func TestHTTPServerRoundTrip(t *testing.T) {
	platform, ctx, digest := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	secret := []byte("network secret")
	owner := NewOwner(platform.VerificationKey(), secret, rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	srv := httptest.NewServer(owner.Handler())
	defer srv.Close()

	agent := NewAgentSeeded(5)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := Client(srv.URL, report.Marshal(), agent.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	got, err := agent.Unwrap(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(secret) {
		t.Fatal("secret differs over HTTP")
	}
}

func TestHTTPServerRefusesBadReport(t *testing.T) {
	platform, _, _ := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	owner := NewOwner(platform.VerificationKey(), []byte("s"), rand.New(rand.NewSource(7)))
	srv := httptest.NewServer(owner.Handler())
	defer srv.Close()
	if _, err := Client(srv.URL, []byte("garbage"), []byte("junk")); err == nil {
		t.Fatal("garbage report accepted over HTTP")
	}
}

func TestChainBasedAttestation(t *testing.T) {
	platform, ctx, digest := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	secret := []byte("chain-released secret")
	// The owner pins only AMD's root key.
	owner := NewOwnerWithRoot(platform.AMDRootKey(), secret, rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := owner.HandleReportWithChain(report.Marshal(), platform.CertChain().Marshal(), agent.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	got, err := agent.Unwrap(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(secret) {
		t.Fatal("secret mismatch via chain attestation")
	}
}

func TestChainAttestationRejectsForeignChain(t *testing.T) {
	platform, ctx, digest := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	evilPlatform := psp.New(costmodel.Unit(), 666)
	owner := NewOwnerWithRoot(platform.AMDRootKey(), []byte("s"), rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	// A malicious host presents a self-minted chain: the ARK pin refuses.
	if _, err := owner.HandleReportWithChain(report.Marshal(), evilPlatform.CertChain().Marshal(), agent.PublicKey()); err == nil {
		t.Fatal("foreign chain accepted")
	}
}

func TestChainAttestationRejectsWrongVCEK(t *testing.T) {
	// Valid chain from the right platform, but report signed by a
	// different key (another platform's VCEK): signature check fails.
	platformA, _, _ := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	platformB, ctxB, digestB := launchGuest(t, 2, sev.SNP, sev.DefaultPolicy())
	_ = platformB
	owner := NewOwnerWithRoot(platformA.AMDRootKey(), []byte("s"), rand.New(rand.NewSource(7)))
	owner.Allow(digestB)
	agent := NewAgentSeeded(99)
	report, err := ctxB.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.HandleReportWithChain(report.Marshal(), platformA.CertChain().Marshal(), agent.PublicKey()); !errors.Is(err, ErrSignature) {
		t.Fatalf("cross-platform report accepted: %v", err)
	}
}
