package attest

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/sev"
)

// The owner ingests host-relayed bytes; truncated, oversized, and
// wrong-size inputs must be rejected with clear errors before any
// cryptographic processing.

func TestTruncatedReportRefused(t *testing.T) {
	platform, ctx, digest := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	owner := NewOwner(platform.VerificationKey(), []byte("s"), rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	raw := report.Marshal()
	for _, n := range []int{0, 1, 17, len(raw) - 1} {
		if _, err := owner.HandleReport(raw[:n], agent.PublicKey()); err == nil {
			t.Fatalf("%d-byte report accepted", n)
		} else if !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("%d-byte report: %v, want truncation error", n, err)
		}
	}
}

func TestOversizedReportRefused(t *testing.T) {
	platform, ctx, digest := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	owner := NewOwner(platform.VerificationKey(), []byte("s"), rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	raw := append(report.Marshal(), 0xAA)
	if _, err := owner.HandleReport(raw, agent.PublicKey()); err == nil {
		t.Fatal("oversized report accepted")
	} else if !strings.Contains(err.Error(), "oversized") {
		t.Fatalf("oversized report: %v, want oversize error", err)
	}
}

func TestWrongSizeGuestKeyRefused(t *testing.T) {
	platform, ctx, digest := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	owner := NewOwner(platform.VerificationKey(), []byte("s"), rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	for _, pub := range [][]byte{nil, []byte("short"), make([]byte, 64)} {
		if _, err := owner.HandleReport(report.Marshal(), pub); !errors.Is(err, ErrBinding) {
			t.Fatalf("%d-byte guest key: %v, want ErrBinding", len(pub), err)
		}
	}
}

func TestUnwrapBundle(t *testing.T) {
	agent := NewAgentSeeded(99)
	bundle, err := kbs.WrapSecret(rand.New(rand.NewSource(4)), agent.PublicKey(), []byte("broker secret"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := agent.UnwrapBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "broker secret" {
		t.Fatalf("unwrapped %q", got)
	}
	if _, err := NewAgentSeeded(1).UnwrapBundle(bundle); err == nil {
		t.Fatal("wrong agent unwrapped the broker bundle")
	}
}

func TestChainCacheSpeedsRepeatAttestation(t *testing.T) {
	platform, ctx, digest := launchGuest(t, 1, sev.SNP, sev.DefaultPolicy())
	owner := NewOwnerWithRoot(platform.AMDRootKey(), []byte("s"), rand.New(rand.NewSource(7)))
	owner.Allow(digest)
	agent := NewAgentSeeded(99)
	report, err := ctx.BuildReport(nil, agent.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	chain := platform.CertChain().Marshal()
	for i := 0; i < 3; i++ {
		if _, err := owner.HandleReportWithChain(report.Marshal(), chain, agent.PublicKey()); err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	hits, misses := owner.verifier.CacheStats()
	if misses != 1 || hits != 2 {
		t.Fatalf("chain cache hits/misses = %d/%d, want 2/1", hits, misses)
	}
}
