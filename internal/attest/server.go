package attest

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// The HTTP face of the guest-owner service, mirroring the paper's nginx
// attestation server (§6.1): the guest POSTs its report and public key,
// the owner replies with the wrapped secret or a 403.

// wire formats
type attestRequest struct {
	Report   string `json:"report"`    // hex of psp.Report.Marshal()
	GuestPub string `json:"guest_pub"` // hex of the agent's X25519 key
}

type attestResponse struct {
	OwnerPub   string `json:"owner_pub"`
	Nonce      string `json:"nonce"`
	Ciphertext string `json:"ciphertext"`
}

// Handler returns the owner's HTTP handler (POST /attest).
func (o *Owner) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/attest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
			return
		}
		var req attestRequest
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "json: "+err.Error(), http.StatusBadRequest)
			return
		}
		report, err := hex.DecodeString(req.Report)
		if err != nil {
			http.Error(w, "report hex: "+err.Error(), http.StatusBadRequest)
			return
		}
		guestPub, err := hex.DecodeString(req.GuestPub)
		if err != nil {
			http.Error(w, "guest_pub hex: "+err.Error(), http.StatusBadRequest)
			return
		}
		bundle, err := o.HandleReport(report, guestPub)
		if err != nil {
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
		resp := attestResponse{
			OwnerPub:   hex.EncodeToString(bundle.OwnerPub),
			Nonce:      hex.EncodeToString(bundle.Nonce),
			Ciphertext: hex.EncodeToString(bundle.Ciphertext),
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// Headers are gone; nothing more to do.
			return
		}
	})
	return mux
}

// Client posts a report to a remote owner service and returns the bundle.
func Client(url string, reportBytes, guestPub []byte) (*SecretBundle, error) {
	req := attestRequest{
		Report:   hex.EncodeToString(reportBytes),
		GuestPub: hex.EncodeToString(guestPub),
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url+"/attest", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("attest: server refused: %s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	var ar attestResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		return nil, err
	}
	ownerPub, err := hex.DecodeString(ar.OwnerPub)
	if err != nil {
		return nil, err
	}
	nonce, err := hex.DecodeString(ar.Nonce)
	if err != nil {
		return nil, err
	}
	ct, err := hex.DecodeString(ar.Ciphertext)
	if err != nil {
		return nil, err
	}
	return &SecretBundle{OwnerPub: ownerPub, Nonce: nonce, Ciphertext: ct}, nil
}
