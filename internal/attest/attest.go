// Package attest implements remote attestation for SEV guests (paper
// §2.4, Fig. 1 steps 5-8): the guest-side agent that requests a signed
// report from the PSP and the guest-owner service that validates it and
// releases secrets over a channel bound to the report.
//
// All cryptography is real: the report signature is ECDSA P-384 verified
// against the platform key, the channel is X25519 ECDH, and the secret is
// wrapped with AES-256-GCM under the derived key. A report with the wrong
// measurement, policy, level, signature, or key binding releases nothing.
package attest

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/psp"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

// ErrDenied matches every attestation refusal: errors.Is(err, ErrDenied)
// is true whenever the owner rejected the evidence, regardless of which
// specific check failed.
var ErrDenied = errors.New("attest: denied")

// Errors distinguish why attestation failed; tests assert the category.
// Each wraps ErrDenied, so errors.Is works against both the specific
// sentinel and the umbrella.
var (
	ErrSignature   = fmt.Errorf("%w: report signature invalid", ErrDenied)
	ErrMeasurement = fmt.Errorf("%w: launch digest not in the allow list", ErrDenied)
	ErrPolicy      = fmt.Errorf("%w: guest policy weaker than required", ErrDenied)
	ErrLevel       = fmt.Errorf("%w: SEV level below required", ErrDenied)
	ErrBinding     = fmt.Errorf("%w: report data does not bind the guest key", ErrDenied)
)

// Agent is the guest-side attestation agent, shipped in the initrd. Its
// ephemeral key pair is generated in encrypted guest memory at attestation
// time (§2.6 "Secret-free Construction").
type Agent struct {
	priv *ecdh.PrivateKey
}

// NewAgent generates the guest's ephemeral X25519 key from rng (the guest
// entropy source; a seeded reader in simulation).
func NewAgent(rng io.Reader) (*Agent, error) {
	priv, err := ecdh.X25519().GenerateKey(rng)
	if err != nil {
		return nil, err
	}
	return &Agent{priv: priv}, nil
}

// NewAgentSeeded is NewAgent with a deterministic source.
func NewAgentSeeded(seed int64) *Agent {
	a, err := NewAgent(rand.New(rand.NewSource(seed)))
	if err != nil {
		panic("attest: seeded keygen cannot fail: " + err.Error())
	}
	return a
}

// PublicKey returns the agent's public key bytes, sent with the report.
func (a *Agent) PublicKey() []byte { return a.priv.PublicKey().Bytes() }

// ReportData binds the agent's public key into the attestation report:
// SHA-256 of the key in the first half of the 64-byte field.
func (a *Agent) ReportData() [64]byte {
	var rd [64]byte
	sum := sha256.Sum256(a.PublicKey())
	copy(rd[:32], sum[:])
	return rd
}

// Unwrap opens a secret bundle using the agent's private key.
func (a *Agent) Unwrap(b *SecretBundle) ([]byte, error) {
	ownerPub, err := ecdh.X25519().NewPublicKey(b.OwnerPub)
	if err != nil {
		return nil, fmt.Errorf("attest: owner key: %w", err)
	}
	shared, err := a.priv.ECDH(ownerPub)
	if err != nil {
		return nil, err
	}
	return kbs.Open(shared, b.Nonce, b.Ciphertext)
}

// UnwrapBundle opens a key-broker bundle (kbs.WrapSecret's output) with
// the agent's key — the guest side of the fleet's attest→key-release
// exchange.
func (a *Agent) UnwrapBundle(b *kbs.Bundle) ([]byte, error) {
	return kbs.UnwrapSecret(a.priv, b)
}

// SecretBundle is the wrapped secret sent to the guest after a valid
// report (Fig. 1 step 8).
type SecretBundle struct {
	OwnerPub   []byte
	Nonce      []byte
	Ciphertext []byte
}

// Owner is the guest owner's validation service: it knows the platform
// verification key, the expected launch digests (from the §4.2 digest
// tool), and the minimum acceptable policy/level.
type Owner struct {
	platformKey *ecdsa.PublicKey
	pinnedARK   *ecdsa.PublicKey
	verifier    *kbs.Verifier // chain walker + cache, set with pinnedARK
	allowed     map[[32]byte]bool
	minPolicy   sev.Policy
	minLevel    sev.Level
	secret      []byte
	rng         io.Reader
}

// NewOwner builds an owner releasing secret to guests whose measurement is
// later allowed via Allow. rng drives ephemeral key generation (seeded in
// simulation).
func NewOwner(platformKey *ecdsa.PublicKey, secret []byte, rng io.Reader) *Owner {
	return &Owner{
		platformKey: platformKey,
		allowed:     make(map[[32]byte]bool),
		minPolicy:   sev.DefaultPolicy(),
		minLevel:    sev.SNP,
		secret:      append([]byte(nil), secret...),
		rng:         rng,
	}
}

// Allow whitelists an expected launch digest.
func (o *Owner) Allow(digest [32]byte) { o.allowed[digest] = true }

// RequireLevel lowers/raises the minimum SEV level (default SNP).
func (o *Owner) RequireLevel(l sev.Level) { o.minLevel = l }

// RequirePolicy sets the minimum policy bits (default DefaultPolicy).
func (o *Owner) RequirePolicy(p sev.Policy) { o.minPolicy = p }

// HandleReport validates a marshaled report plus the guest's public key
// and, on success, returns the wrapped secret.
func (o *Owner) HandleReport(reportBytes, guestPub []byte) (*SecretBundle, error) {
	// Both inputs are host-relayed; reject wrong-size keys before any
	// crypto so a garbage key cannot reach ECDH with a confusing error.
	if len(guestPub) != 32 {
		return nil, fmt.Errorf("%w: guest key is %d bytes, want 32", ErrBinding, len(guestPub))
	}
	r, err := psp.UnmarshalReport(reportBytes)
	if err != nil {
		return nil, err
	}
	if err := psp.VerifyReport(o.platformKey, r); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrSignature, err)
	}
	if !o.allowed[r.Measurement] {
		return nil, fmt.Errorf("%w: %x", ErrMeasurement, r.Measurement[:8])
	}
	if r.Level < o.minLevel {
		return nil, fmt.Errorf("%w: %v < %v", ErrLevel, r.Level, o.minLevel)
	}
	pol := sev.DecodePolicy(r.Policy)
	if (o.minPolicy.NoDebug && !pol.NoDebug) ||
		(o.minPolicy.NoKeySharing && !pol.NoKeySharing) ||
		(o.minPolicy.ESRequired && !pol.ESRequired) {
		return nil, fmt.Errorf("%w: got %+v", ErrPolicy, pol)
	}
	sum := sha256.Sum256(guestPub)
	var want [64]byte
	copy(want[:32], sum[:])
	if r.ReportData != want {
		return nil, ErrBinding
	}

	// Wrap the secret for the attested guest key.
	ownerPriv, err := ecdh.X25519().GenerateKey(o.rng)
	if err != nil {
		return nil, err
	}
	pub, err := ecdh.X25519().NewPublicKey(guestPub)
	if err != nil {
		return nil, fmt.Errorf("attest: guest key: %w", err)
	}
	shared, err := ownerPriv.ECDH(pub)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, 12)
	if _, err := io.ReadFull(o.rng, nonce); err != nil {
		return nil, err
	}
	// The sealing construction is shared with the key broker
	// (kbs.Seal/Open) so guest agents open both the same way.
	ct, err := kbs.Seal(shared, nonce, o.secret)
	if err != nil {
		return nil, err
	}
	return &SecretBundle{OwnerPub: ownerPriv.PublicKey().Bytes(), Nonce: nonce, Ciphertext: ct}, nil
}

// InProcess runs the full attestation round trip inside the simulation,
// charging virtual time: report generation on the shared PSP (which
// contends under concurrency, Fig. 12) plus the network/validation span.
// It implements the monitors' Attestor interface.
type InProcess struct {
	Owner     *Owner
	AgentSeed int64
	// WantSecret, when non-nil, is compared against the unwrapped secret.
	WantSecret []byte
}

// Attest performs Fig. 1 steps 5-8 for machine m.
func (ip *InProcess) Attest(proc *sim.Proc, m *kvm.Machine) error {
	if m.Launch == nil {
		return errors.New("attest: machine has no launch context")
	}
	agent := NewAgentSeeded(ip.AgentSeed + int64(m.Launch.ASID()))
	// Guest requests the report; the PSP builds and signs it (charged on
	// the shared PSP resource).
	report, err := m.Launch.BuildReport(proc, agent.ReportData())
	if err != nil {
		return err
	}
	// Network round trip + server-side validation.
	proc.Sleep(m.Host.Model.AttestNetwork)
	bundle, err := ip.Owner.HandleReport(report.Marshal(), agent.PublicKey())
	if err != nil {
		return err
	}
	secret, err := agent.Unwrap(bundle)
	if err != nil {
		return err
	}
	if ip.WantSecret != nil && string(secret) != string(ip.WantSecret) {
		return errors.New("attest: unwrapped secret mismatch")
	}
	return nil
}

// NewOwnerWithRoot builds an owner that pins only AMD's root key (the
// ARK) and verifies the full VCEK certificate chain delivered alongside
// each report — the production trust shape (the paper's sev-guest tools
// fetch and validate the chain the same way).
func NewOwnerWithRoot(ark *ecdsa.PublicKey, secret []byte, rng io.Reader) *Owner {
	o := NewOwner(nil, secret, rng)
	o.pinnedARK = ark
	o.verifier = kbs.NewVerifier(ark)
	return o
}

// HandleReportWithChain validates the certificate chain against the
// pinned ARK, then the report against the chain's VCEK, then proceeds as
// HandleReport. The chain walk is delegated to the key broker's verifier,
// so repeated reports from the same platform hit its content-addressed
// cache while the report signature is still checked every time.
func (o *Owner) HandleReportWithChain(reportBytes, chainBytes, guestPub []byte) (*SecretBundle, error) {
	if o.pinnedARK == nil {
		return nil, errors.New("attest: owner has no pinned AMD root key")
	}
	chain, _, err := o.verifier.VerifyChain(chainBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrSignature, err)
	}
	restore := o.platformKey
	o.platformKey = chain.VCEK.Key()
	defer func() { o.platformKey = restore }()
	return o.HandleReport(reportBytes, guestPub)
}
