package firecracker

import (
	"errors"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/bzimage"
	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/verifier"
)

// testInitrd is small to keep unit tests fast; size-sensitive assertions
// use the real DefaultInitrdSize in the expt package.
func testInitrd(t *testing.T) []byte {
	t.Helper()
	return kernelgen.BuildInitrd(1, 1<<20)
}

func lupineArtifacts(t *testing.T) *kernelgen.Artifacts {
	t.Helper()
	art, err := kernelgen.Cached(kernelgen.Lupine())
	if err != nil {
		t.Fatal(err)
	}
	return art
}

// runBoot executes one boot inside a fresh engine and returns the result.
func runBoot(t *testing.T, cfg Config) (*Result, error) {
	t.Helper()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 42)
	var (
		res *Result
		err error
	)
	eng.Go("boot", func(p *sim.Proc) {
		res, err = Boot(p, host, cfg)
	})
	eng.Run()
	return res, err
}

func TestStockBootReachesInit(t *testing.T) {
	res, err := runBoot(t, Config{
		Preset:    kernelgen.Lupine(),
		Artifacts: lupineArtifacts(t),
		Initrd:    testInitrd(t),
		Scheme:    SchemeStock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.InitrdOK {
		t.Fatal("initrd not mounted")
	}
	if res.Report.CPUs != 1 {
		t.Fatalf("guest saw %d CPUs", res.Report.CPUs)
	}
	b := res.Breakdown
	if b.Total <= 0 {
		t.Fatal("zero total boot time")
	}
	// The reference point: a non-SEV Lupine/AWS-class microVM boots in
	// tens of ms (§3.1: "about 40ms").
	if b.Total > 60*time.Millisecond {
		t.Fatalf("stock boot took %v, want tens of ms", b.Total)
	}
	if b.PreEncryption != 0 || b.BootVerification != 0 || b.BootstrapLoader != 0 {
		t.Fatalf("stock boot has SEV phases: %+v", b)
	}
}

func TestSEVeriFastBzBootReachesInit(t *testing.T) {
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, kernelgen.Lupine().Cmdline)
	res, err := runBoot(t, Config{
		Preset:    kernelgen.Lupine(),
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.SNP,
		Scheme:    SchemeSEVeriFastBz,
		Hashes:    &hashes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.InitrdOK {
		t.Fatal("initrd not mounted")
	}
	b := res.Breakdown
	if b.PreEncryption <= 0 || b.BootVerification <= 0 || b.BootstrapLoader <= 0 {
		t.Fatalf("SEV phases missing: %+v", b)
	}
	// Fig. 10: SEVeriFast pre-encryption ~8 ms.
	if b.PreEncryption < 4*time.Millisecond || b.PreEncryption > 16*time.Millisecond {
		t.Fatalf("pre-encryption %v, paper says ~8 ms", b.PreEncryption)
	}
	if res.LaunchDigest == ([32]byte{}) {
		t.Fatal("no launch digest")
	}
}

func TestLaunchDigestMatchesExpectedTool(t *testing.T) {
	// The §4.2 tool: guest owner computes the expected digest from the
	// config alone; it must equal the PSP's measurement.
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	preset := kernelgen.Lupine()
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, preset.Cmdline)
	res, err := runBoot(t, Config{
		Preset:    preset,
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.SNP,
		Scheme:    SchemeSEVeriFastBz,
		Hashes:    &hashes,
	})
	if err != nil {
		t.Fatal(err)
	}
	expected, err := measure.ExpectedDigest(measure.Config{
		Verifier: verifier.Image(1),
		Hashes:   hashes,
		Cmdline:  preset.Cmdline,
		VCPUs:    1,
		MemSize:  256 << 20,
		Level:    sev.SNP,
		Policy:   sev.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LaunchDigest != expected {
		t.Fatalf("PSP digest %x != expected-tool digest %x", res.LaunchDigest[:8], expected[:8])
	}
}

func TestSEVeriFastVmlinuxBoot(t *testing.T) {
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	hashes := measure.HashComponents(art.VMLinux, initrd, kernelgen.Lupine().Cmdline)
	res, err := runBoot(t, Config{
		Preset:    kernelgen.Lupine(),
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.SNP,
		Scheme:    SchemeSEVeriFastVmlinux,
		Hashes:    &hashes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Entry != art.Entry {
		t.Fatalf("entered kernel at %#x, want %#x", res.Report.Entry, art.Entry)
	}
	// vmlinux boot has no bootstrap-loader stage...
	if res.Breakdown.BootstrapLoader != 0 {
		t.Fatal("vmlinux boot ran a bootstrap loader")
	}
	// ...but verifies ~7x more bytes, so boot verification costs more than
	// the bzImage flavour (Fig. 11's tradeoff).
	bz := bootBz(t, art, initrd)
	if res.Breakdown.BootVerification <= bz.Breakdown.BootVerification {
		t.Fatalf("vmlinux verify %v <= bzImage verify %v; measured direct boot must favor compression",
			res.Breakdown.BootVerification, bz.Breakdown.BootVerification)
	}
}

func bootBz(t *testing.T, art *kernelgen.Artifacts, initrd []byte) *Result {
	t.Helper()
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, kernelgen.Lupine().Cmdline)
	res, err := runBoot(t, Config{
		Preset:    kernelgen.Lupine(),
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.SNP,
		Scheme:    SchemeSEVeriFastBz,
		Hashes:    &hashes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHostTamperingDetected is the paper's §2.6 "Protection from the Host"
// case 1: the host swaps a boot component after its hash was
// pre-encrypted. The boot verifier must refuse to boot.
func TestHostTamperingDetected(t *testing.T) {
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	preset := kernelgen.Lupine()
	// Hashes of the *genuine* components...
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, preset.Cmdline)
	// ...but the host stages a tampered kernel.
	evil := append([]byte(nil), art.BzImageLZ4...)
	evil[len(evil)/2] ^= 0x01
	evilArt := *art
	evilArt.BzImageLZ4 = evil

	_, err := runBoot(t, Config{
		Preset:    preset,
		Artifacts: &evilArt,
		Initrd:    initrd,
		Level:     sev.SNP,
		Scheme:    SchemeSEVeriFastBz,
		Hashes:    &hashes,
	})
	if !errors.Is(err, verifier.ErrVerification) {
		t.Fatalf("tampered kernel booted: err = %v, want ErrVerification", err)
	}
}

func TestTamperedInitrdDetected(t *testing.T) {
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	preset := kernelgen.Lupine()
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, preset.Cmdline)
	evil := append([]byte(nil), initrd...)
	evil[100] ^= 0xFF
	_, err := runBoot(t, Config{
		Preset:    preset,
		Artifacts: art,
		Initrd:    evil,
		Level:     sev.SNP,
		Scheme:    SchemeSEVeriFastBz,
		Hashes:    &hashes,
	})
	if !errors.Is(err, verifier.ErrVerification) {
		t.Fatalf("tampered initrd booted: err = %v, want ErrVerification", err)
	}
}

// TestMaliciousVerifierChangesDigest is §2.6 case 3: a patched verifier
// must produce a different launch digest, which the guest owner detects.
func TestMaliciousVerifierChangesDigest(t *testing.T) {
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, kernelgen.Lupine().Cmdline)
	boot := func(seed int64) [32]byte {
		res, err := runBoot(t, Config{
			Preset:       kernelgen.Lupine(),
			Artifacts:    art,
			Initrd:       initrd,
			Level:        sev.SNP,
			Scheme:       SchemeSEVeriFastBz,
			Hashes:       &hashes,
			VerifierSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.LaunchDigest
	}
	if boot(1) == boot(666) {
		t.Fatal("malicious verifier produced the same launch digest")
	}
}

// TestMaliciousHashesChangeDigest is §2.6 case 2: pre-encrypting hashes of
// malicious components yields a different launch digest.
func TestMaliciousHashesChangeDigest(t *testing.T) {
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	good := measure.HashComponents(art.BzImageLZ4, initrd, kernelgen.Lupine().Cmdline)
	evilKernel := append([]byte(nil), art.BzImageLZ4...)
	evilKernel[0x300] ^= 1
	bad := measure.HashComponents(evilKernel, initrd, kernelgen.Lupine().Cmdline)
	evilArt := *art
	evilArt.BzImageLZ4 = evilKernel

	boot := func(a *kernelgen.Artifacts, h measure.ComponentHashes) [32]byte {
		res, err := runBoot(t, Config{
			Preset:    kernelgen.Lupine(),
			Artifacts: a,
			Initrd:    initrd,
			Level:     sev.SNP,
			Scheme:    SchemeSEVeriFastBz,
			Hashes:    &h,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.LaunchDigest
	}
	if boot(art, good) == boot(&evilArt, bad) {
		t.Fatal("swapped components+hashes left the launch digest unchanged")
	}
}

func TestInBandHashingSlowerThanOutOfBand(t *testing.T) {
	// §4.3: providing precomputed hashes removes up to tens of ms of
	// hashing from the critical path.
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, kernelgen.Lupine().Cmdline)
	base := Config{
		Preset:    kernelgen.Lupine(),
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.SNP,
		Scheme:    SchemeSEVeriFastBz,
	}
	oob := base
	oob.Hashes = &hashes
	inband := base // Hashes nil -> VMM hashes at launch

	resOOB, err := runBoot(t, oob)
	if err != nil {
		t.Fatal(err)
	}
	resIn, err := runBoot(t, inband)
	if err != nil {
		t.Fatal(err)
	}
	if resIn.Breakdown.Total <= resOOB.Breakdown.Total {
		t.Fatalf("in-band (%v) not slower than out-of-band (%v)",
			resIn.Breakdown.Total, resOOB.Breakdown.Total)
	}
}

func TestGzipCodecSlowerThanLZ4(t *testing.T) {
	// Fig. 5: LZ4 wins against gzip despite gzip's better ratio, because
	// decompression dominates.
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	run := func(codec bzimage.Codec, image []byte) *Result {
		hashes := measure.HashComponents(image, initrd, kernelgen.Lupine().Cmdline)
		res, err := runBoot(t, Config{
			Preset:    kernelgen.Lupine(),
			Artifacts: art,
			Initrd:    initrd,
			Level:     sev.SNP,
			Scheme:    SchemeSEVeriFastBz,
			Codec:     codec,
			Hashes:    &hashes,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lz := run(bzimage.CodecLZ4, art.BzImageLZ4)
	gz := run(bzimage.CodecGzip, art.BzImageGzip)
	if gz.Breakdown.BootstrapLoader <= lz.Breakdown.BootstrapLoader {
		t.Fatalf("gzip decompress (%v) not slower than lz4 (%v)",
			gz.Breakdown.BootstrapLoader, lz.Breakdown.BootstrapLoader)
	}
	if gz.Breakdown.Total <= lz.Breakdown.Total {
		t.Fatalf("gzip total (%v) not slower than lz4 (%v)", gz.Breakdown.Total, lz.Breakdown.Total)
	}
}

func TestPreEncryptPageTablesAblation(t *testing.T) {
	// Fig. 7: pre-encrypting the page tables grows the root of trust by
	// 12 KiB; generating them in the verifier is cheaper overall.
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, kernelgen.Lupine().Cmdline)
	base := Config{
		Preset:    kernelgen.Lupine(),
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.SNP,
		Scheme:    SchemeSEVeriFastBz,
		Hashes:    &hashes,
	}
	gen, err := runBoot(t, base)
	if err != nil {
		t.Fatal(err)
	}
	pre := base
	pre.PreEncryptPageTables = true
	preRes, err := runBoot(t, pre)
	if err != nil {
		t.Fatal(err)
	}
	if preRes.Breakdown.PreEncryption <= gen.Breakdown.PreEncryption {
		t.Fatal("pre-encrypting page tables did not increase pre-encryption time")
	}
	if preRes.LaunchDigest == gen.LaunchDigest {
		t.Fatal("page-table policy change left the digest unchanged")
	}
}

func TestSEVAndESLevels(t *testing.T) {
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, kernelgen.Lupine().Cmdline)
	for _, level := range []sev.Level{sev.SEV, sev.ES, sev.SNP} {
		res, err := runBoot(t, Config{
			Preset:    kernelgen.Lupine(),
			Artifacts: art,
			Initrd:    initrd,
			Level:     level,
			Scheme:    SchemeSEVeriFastBz,
			Hashes:    &hashes,
		})
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if !res.Report.InitrdOK {
			t.Fatalf("%v: initrd not mounted", level)
		}
	}
}

func TestConfigErrors(t *testing.T) {
	art := lupineArtifacts(t)
	if _, err := runBoot(t, Config{Preset: kernelgen.Lupine(), Scheme: SchemeStock}); err == nil {
		t.Fatal("missing artifacts accepted")
	}
	if _, err := runBoot(t, Config{Preset: kernelgen.Lupine(), Artifacts: art, Level: sev.SNP, Scheme: SchemeStock}); err == nil {
		t.Fatal("stock scheme with SEV accepted")
	}
	if _, err := runBoot(t, Config{Preset: kernelgen.Lupine(), Artifacts: art, Level: sev.None, Scheme: SchemeSEVeriFastBz}); err == nil {
		t.Fatal("SEVeriFast scheme without SEV accepted")
	}
}

func TestTHPReducesPvalidateTime(t *testing.T) {
	// §6.1: huge pages bring pvalidate from >60 ms to <1 ms for 256 MiB.
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, kernelgen.Lupine().Cmdline)
	cfg := Config{
		Preset:    kernelgen.Lupine(),
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.SNP,
		Scheme:    SchemeSEVeriFastBz,
		Hashes:    &hashes,
	}
	run := func(thp bool) *Result {
		eng := sim.NewEngine()
		host := kvm.NewHost(eng, costmodel.Default(), 42)
		host.THP = thp
		var res *Result
		var err error
		eng.Go("boot", func(p *sim.Proc) { res, err = Boot(p, host, cfg) })
		eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(true)
	without := run(false)
	delta := without.Breakdown.BootVerification - with.Breakdown.BootVerification
	if delta < 50*time.Millisecond {
		t.Fatalf("4 KiB pvalidate only added %v to verification; paper says ~60 ms", delta)
	}
}

func TestMemoryFootprint(t *testing.T) {
	// §6.3: SEV adds ~16 KiB of bookkeeping per guest.
	art := lupineArtifacts(t)
	initrd := testInitrd(t)
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, kernelgen.Lupine().Cmdline)
	res, err := runBoot(t, Config{
		Preset:    kernelgen.Lupine(),
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.SNP,
		Scheme:    SchemeSEVeriFastBz,
		Hashes:    &hashes,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Machine.Mem.SEVMetadataBytes()
	if got < 1<<10 || got > 64<<10 {
		t.Fatalf("SEV metadata %d bytes, want ~16 KiB scale", got)
	}
}
