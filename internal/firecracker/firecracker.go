// Package firecracker models the microVM monitor with SEVeriFast's
// modifications (paper §5): the stock direct-boot path (unchanged, no SEV)
// and the SEV boot path, which pre-encrypts the minimal root of trust,
// stages components for measured direct boot, and enters the guest at the
// boot verifier.
//
// Three boot schemes reproduce the paper's comparisons:
//
//	SchemeStock             Fig. 11's "Stock FC": direct vmlinux boot, no SEV
//	SchemeSEVeriFastBz      SEVeriFast with an LZ4 bzImage (the design point)
//	SchemeSEVeriFastVmlinux SEVeriFast with an uncompressed vmlinux over the
//	                        optimized fw_cfg streaming protocol (§5)
package firecracker

import (
	"fmt"
	"sync"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/bootparams"
	"github.com/severifast/severifast/internal/bzimage"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/linux"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/mptable"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/trace"
	"github.com/severifast/severifast/internal/verifier"
	"github.com/severifast/severifast/internal/virtio"
)

// Scheme selects the boot path.
type Scheme int

// Boot schemes.
const (
	SchemeStock Scheme = iota
	SchemeSEVeriFastBz
	SchemeSEVeriFastVmlinux
)

func (s Scheme) String() string {
	switch s {
	case SchemeStock:
		return "stock-fc"
	case SchemeSEVeriFastBz:
		return "severifast-bz"
	case SchemeSEVeriFastVmlinux:
		return "severifast-vmlinux"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Attestor performs remote attestation for a booted guest; implemented by
// internal/attest. Nil means no attestation (e.g. the Lupine kernel, which
// has no networking — paper §6.1).
type Attestor interface {
	Attest(proc *sim.Proc, m *kvm.Machine) error
}

// Config is the VM configuration file plus SEVeriFast's extra arguments
// (boot verifier and hash file, §4.3/§5).
type Config struct {
	Preset    kernelgen.Preset
	Artifacts *kernelgen.Artifacts
	Initrd    []byte
	Cmdline   string // defaults to the preset's
	VCPUs     int    // defaults to 1
	MemSize   uint64 // defaults to 256 MiB
	Level     sev.Level
	Scheme    Scheme

	// Codec overrides the bzImage compression for SchemeSEVeriFastBz
	// (lz4 is the design default; gzip reproduces Fig. 5's alternative).
	Codec bzimage.Codec

	// Hashes carries the out-of-band component hashes (§4.3). Nil means
	// the VMM hashes the components itself at launch — the in-band
	// ablation, which puts ~Hash(kernel)+Hash(initrd) on the critical path.
	Hashes *measure.ComponentHashes

	// Plan carries a precomputed launch plan (the measured-image cache in
	// internal/fleet memoizes it per image). Nil means the VMM plans at
	// launch time. A non-nil Plan requires Hashes: the plan embeds the
	// hash page, so the two must come from the same measurement pass.
	Plan []measure.Region

	// PreEncryptPageTables is the Fig. 7 ablation.
	PreEncryptPageTables bool

	// VerifierSeed selects the boot verifier build; changing it models
	// shipping a different verifier (which attestation must catch).
	VerifierSeed int64

	// AllowKeySharing relaxes the launch policy's NoKeySharing bit so the
	// guest can donate its encryption key to warm-started clones (paper
	// §6.2/§7). The relaxed policy is visible in the measurement.
	AllowKeySharing bool

	// Attestor, when set and the kernel has networking, runs remote
	// attestation after init.
	Attestor Attestor
}

func (c *Config) fillDefaults() {
	if c.Cmdline == "" {
		c.Cmdline = c.Preset.Cmdline
	}
	if c.VCPUs == 0 {
		c.VCPUs = 1
	}
	if c.MemSize == 0 {
		c.MemSize = 256 << 20
	}
	if c.Codec == "" {
		c.Codec = bzimage.CodecLZ4
	}
	if c.VerifierSeed == 0 {
		c.VerifierSeed = 1
	}
}

// Result is one completed boot.
type Result struct {
	Timeline     *trace.Timeline
	Breakdown    trace.Breakdown
	Report       *linux.BootReport
	Machine      *kvm.Machine
	LaunchDigest [32]byte
	Scheme       Scheme
}

// Boot runs one microVM boot to init (plus attestation when configured) on
// the calling simulation process.
func Boot(proc *sim.Proc, host *kvm.Host, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	if cfg.Artifacts == nil {
		return nil, fmt.Errorf("firecracker: no kernel artifacts")
	}

	m := host.NewMachine(proc, cfg.MemSize, cfg.Level)
	m.Timeline.Annotate("vmm", "firecracker")
	m.Timeline.Annotate("scheme", cfg.Scheme.String())
	m.Timeline.Annotate("level", cfg.Level.String())
	if cfg.Scheme == SchemeSEVeriFastBz {
		m.Timeline.Annotate("codec", string(cfg.Codec))
	}
	attachDevices(m, cfg.Preset)
	proc.Sleep(host.Model.VMMProcessStart)

	var (
		res *Result
		err error
	)
	if cfg.Scheme == SchemeStock {
		res, err = bootStock(proc, host, m, cfg)
	} else {
		res, err = bootSEV(proc, host, m, cfg)
	}
	if err != nil {
		return nil, err
	}

	if cfg.Attestor != nil && cfg.Preset.Networking && cfg.Level.Encrypted() {
		m.Timeline.Begin("attest", proc.Now())
		m.DebugEvent(proc, sev.EvAttestStart)
		if err := cfg.Attestor.Attest(proc, m); err != nil {
			return nil, fmt.Errorf("firecracker: attestation: %w", err)
		}
		m.DebugEvent(proc, sev.EvAttestDone)
		m.Timeline.End("attest", proc.Now())
	}
	res.Breakdown = m.Timeline.Breakdown()
	m.Timeline.Close(proc.Now())
	return res, nil
}

// bootStock is the unmodified Firecracker path: direct boot of an
// uncompressed vmlinux, no firmware, no verifier (paper §2.1).
func bootStock(proc *sim.Proc, host *kvm.Host, m *kvm.Machine, cfg Config) (*Result, error) {
	if cfg.Level != sev.None {
		return nil, fmt.Errorf("firecracker: stock scheme cannot boot a %v guest", cfg.Level)
	}
	model := host.Model

	// Load each ELF segment to the location it will run (§2.1 step 1).
	img, err := parseVMLinux(cfg.Artifacts)
	if err != nil {
		return nil, err
	}
	loaded := 0
	for _, seg := range img.segments {
		if len(seg.data) == 0 {
			continue
		}
		if err := m.Mem.HostWriteAliased(seg.vaddr, seg.data); err != nil {
			return nil, fmt.Errorf("firecracker: loading segment: %w", err)
		}
		loaded += len(seg.data)
	}
	proc.Sleep(model.VMMLoad(loaded))

	// Boot structures (§2.1 step 2) and the initrd, all plain text.
	if err := writeBootStructures(m, cfg, len(cfg.Initrd)); err != nil {
		return nil, err
	}
	if len(cfg.Initrd) > 0 {
		if err := m.Mem.HostWriteAliased(measure.GPAInitrd, cfg.Initrd); err != nil {
			return nil, err
		}
		proc.Sleep(model.VMMLoad(len(cfg.Initrd)))
	}
	proc.Sleep(model.VMMSetupMisc)

	// Enter the guest at the kernel's 64-bit entry point (§2.1 step 3).
	m.DebugEvent(proc, sev.EvGuestEntry)
	handoff := &verifier.Handoff{
		Kind:       verifier.KindVmlinux,
		Entry:      img.entry,
		InitrdGPA:  measure.GPAInitrd,
		InitrdSize: len(cfg.Initrd),
	}
	rep, err := linux.Boot(proc, m, handoff, cfg.Preset)
	if err != nil {
		return nil, err
	}
	return &Result{Timeline: m.Timeline, Report: rep, Machine: m, Scheme: cfg.Scheme}, nil
}

// bootSEV is the SEVeriFast path (Fig. 6).
func bootSEV(proc *sim.Proc, host *kvm.Host, m *kvm.Machine, cfg Config) (*Result, error) {
	if !cfg.Level.Encrypted() {
		return nil, fmt.Errorf("firecracker: SEVeriFast scheme requires an SEV level, got %v", cfg.Level)
	}
	if cfg.Plan != nil && cfg.Hashes == nil {
		return nil, fmt.Errorf("firecracker: precomputed plan without component hashes")
	}
	model := host.Model

	// Select the kernel image and the staging strategy.
	kernelImage, kind, err := selectKernel(cfg)
	if err != nil {
		return nil, err
	}

	// Component hashes: out-of-band (free at boot time) or in-band.
	var hashes measure.ComponentHashes
	if cfg.Hashes != nil {
		hashes = *cfg.Hashes
	} else {
		m.Timeline.Begin("hash.components", proc.Now())
		hashes = measure.HashComponents(kernelImage, cfg.Initrd, cfg.Cmdline)
		proc.Sleep(model.Hash(len(kernelImage)) + model.Hash(len(cfg.Initrd)))
		m.Timeline.End("hash.components", proc.Now())
	}

	policy := launchPolicy(cfg.Level)
	if cfg.AllowKeySharing {
		policy.NoKeySharing = false
	}
	regions := cfg.Plan
	if regions == nil {
		regions, err = measure.Plan(measure.Config{
			Verifier:             verifier.Image(cfg.VerifierSeed),
			Hashes:               hashes,
			Cmdline:              cfg.Cmdline,
			VCPUs:                cfg.VCPUs,
			MemSize:              cfg.MemSize,
			Level:                cfg.Level,
			Policy:               policy,
			PreEncryptPageTables: cfg.PreEncryptPageTables,
		})
		if err != nil {
			return nil, err
		}
	}

	m.Timeline.Begin("sev.host-prep", proc.Now())
	m.PrepSEVHost(proc)
	m.Timeline.End("sev.host-prep", proc.Now())

	// Stage the measured-direct-boot components in shared memory. The
	// kernel image and initrd are interned as shared artifacts first:
	// staging then aliases the canonical copy with provenance, so every
	// later hash over these ranges (launch measurement, in-guest
	// verification) can hit the per-artifact digest memo across all
	// boots of the same image.
	artifact.Intern(kernelImage)
	artifact.Intern(cfg.Initrd)
	m.Timeline.Begin("vmm.stage", proc.Now())
	in := verifier.Inputs{
		Kind:                   kind,
		InitrdStageGPA:         measure.GPAStageB,
		InitrdSize:             len(cfg.Initrd),
		InitrdDstGPA:           measure.GPAInitrd,
		ScratchGPA:             measure.GPAScratch,
		PageTablesPreEncrypted: cfg.PreEncryptPageTables,
	}
	switch kind {
	case verifier.KindBzImage:
		if err := m.Mem.HostWriteAliased(measure.GPAStageA, kernelImage); err != nil {
			return nil, err
		}
		in.StageGPA = measure.GPAStageA
		in.KernelSize = len(kernelImage)
		in.KernelDstGPA = measure.GPABzTarget
	case verifier.KindVmlinux:
		chunks, err := verifier.BuildChunks(kernelImage, measure.GPAStageA)
		if err != nil {
			return nil, err
		}
		if err := m.Mem.HostWriteAliased(measure.GPAStageA, kernelImage); err != nil {
			return nil, err
		}
		in.Chunks = chunks
	}
	proc.Sleep(model.VMMLoad(len(kernelImage)))
	if len(cfg.Initrd) > 0 {
		if err := m.Mem.HostWriteAliased(measure.GPAStageB, cfg.Initrd); err != nil {
			return nil, err
		}
		proc.Sleep(model.VMMLoad(len(cfg.Initrd)))
	}
	proc.Sleep(model.VMMSetupMisc)
	m.Timeline.End("vmm.stage", proc.Now())

	// The launch flow (Fig. 1): LAUNCH_START, LAUNCH_UPDATE_DATA over the
	// plan, LAUNCH_FINISH. This is the "Pre-encryption" column of Fig. 10.
	m.Timeline.Begin("preenc", proc.Now())
	if err := m.StartLaunch(proc, policy); err != nil {
		return nil, err
	}
	m.Timeline.Annotate("asid", fmt.Sprintf("%d", m.Launch.ASID()))
	// Regions are staged through an update batch: PSP charges and page
	// flips happen per region at the same virtual-time points as before,
	// while the content hashes run across the host worker pool and fold
	// serially at Close — same digest, less host wall-clock.
	batch := m.Launch.NewUpdateBatch()
	for _, r := range regions {
		var err error
		if r.Art != nil {
			// Zero-copy: alias the plan's staging blob into the guest pages
			// with provenance, so the deferred content hash is a memo hit on
			// every boot of an already-measured image.
			err = batch.StageArtifact(proc, r.GPA, r.Art, r.ArtOff, len(r.Data), r.Type)
		} else {
			err = batch.Stage(proc, r.GPA, r.Data, r.Type)
		}
		if err != nil {
			return nil, fmt.Errorf("firecracker: measuring %s: %w", r.Name, err)
		}
	}
	if err := batch.Close(); err != nil {
		return nil, fmt.Errorf("firecracker: folding launch digest: %w", err)
	}
	digest, err := m.Launch.LaunchFinish(proc)
	if err != nil {
		return nil, err
	}
	m.Timeline.End("preenc", proc.Now())

	// Enter the guest at the boot verifier (the root of trust).
	m.DebugEvent(proc, sev.EvGuestEntry)
	handoff, err := verifier.Run(proc, m, in)
	if err != nil {
		return nil, err
	}
	rep, err := linux.Boot(proc, m, handoff, cfg.Preset)
	if err != nil {
		return nil, err
	}
	return &Result{
		Timeline:     m.Timeline,
		Report:       rep,
		Machine:      m,
		LaunchDigest: digest,
		Scheme:       cfg.Scheme,
	}, nil
}

func selectKernel(cfg Config) ([]byte, verifier.KernelKind, error) {
	var (
		img  []byte
		kind verifier.KernelKind
	)
	switch cfg.Scheme {
	case SchemeSEVeriFastBz:
		kind = verifier.KindBzImage
		switch cfg.Codec {
		case bzimage.CodecLZ4:
			img = cfg.Artifacts.BzImageLZ4
		case bzimage.CodecGzip:
			img = cfg.Artifacts.BzImageGzip
		default:
			built, err := bzimage.Build(cfg.Artifacts.VMLinux, cfg.Codec, cfg.Preset.Seed)
			if err != nil {
				return nil, 0, err
			}
			img = built
		}
	case SchemeSEVeriFastVmlinux:
		img, kind = cfg.Artifacts.VMLinux, verifier.KindVmlinux
	default:
		return nil, 0, fmt.Errorf("firecracker: scheme %v has no SEV kernel", cfg.Scheme)
	}
	// An artifact bundle with the selected image missing would otherwise
	// "boot" a zero-byte kernel and fail much later inside the guest.
	if len(img) == 0 {
		return nil, 0, fmt.Errorf("firecracker: artifacts carry no kernel image for scheme %v", cfg.Scheme)
	}
	return img, kind, nil
}

// launchPolicy picks the strongest policy the level supports.
func launchPolicy(level sev.Level) sev.Policy {
	p := sev.DefaultPolicy()
	if level < sev.ES {
		p.ESRequired = false
	}
	return p
}

// LaunchPolicy returns the policy Boot will launch with for the given
// level and key-sharing choice. Exported so planners (internal/fleet's
// measured-image cache, digest tools) measure against the exact policy
// the VMM uses — the policy is folded into the launch digest.
func LaunchPolicy(level sev.Level, allowKeySharing bool) sev.Policy {
	p := launchPolicy(level)
	if allowKeySharing {
		p.NoKeySharing = false
	}
	return p
}

// writeBootStructures fills guest memory with the plain-text structures a
// non-SEV direct boot needs (zero page, cmdline, mptable).
func writeBootStructures(m *kvm.Machine, cfg Config, initrdSize int) error {
	zp, err := bootparams.Build(bootparams.Params{
		CmdlinePtr:   measure.GPACmdline,
		CmdlineSize:  uint32(len(cfg.Cmdline)),
		RamdiskImage: measure.GPAInitrd,
		RamdiskSize:  uint32(initrdSize),
		E820:         bootparams.StandardE820(cfg.MemSize),
	})
	if err != nil {
		return err
	}
	if err := m.Mem.HostWrite(measure.GPAZeroPage, zp); err != nil {
		return err
	}
	if err := m.Mem.HostWrite(measure.GPACmdline, []byte(cfg.Cmdline)); err != nil {
		return err
	}
	return m.Mem.HostWrite(measure.GPAMPTable, mptable.Build(cfg.VCPUs, measure.GPAMPTable))
}

// vmImage is a lightweight view of the vmlinux for direct loading.
type vmImage struct {
	entry    uint64
	segments []vmSegment
}

type vmSegment struct {
	vaddr uint64
	data  []byte
}

func parseVMLinux(art *kernelgen.Artifacts) (*vmImage, error) {
	regions, err := verifier.BuildChunks(art.VMLinux, 0)
	if err != nil {
		return nil, err
	}
	img := &vmImage{entry: art.Entry}
	for _, c := range regions {
		if c.DestGPA == 0 {
			continue
		}
		// BuildChunks validates ranges against the file, but keep the
		// bound explicit here: a corrupt chunk list must surface as an
		// error, not a slice panic in the VMM.
		end := c.FileOff + uint64(c.Size)
		if c.Size < 0 || end < c.FileOff || end > uint64(len(art.VMLinux)) {
			return nil, fmt.Errorf("firecracker: chunk [%#x,+%d) outside vmlinux (%d bytes)",
				c.FileOff, c.Size, len(art.VMLinux))
		}
		img.segments = append(img.segments, vmSegment{
			vaddr: c.DestGPA,
			data:  art.VMLinux[c.FileOff:end],
		})
	}
	return img, nil
}

// RootfsImage is the deterministic block-device image every microVM gets:
// sector 0 carries the magic the guest checks when mounting /dev/vda.
// The image is built once and shared: the block backend only ever copies
// sectors out of it, so every machine can serve the same canonical bytes.
func RootfsImage() []byte {
	rootfsOnce.Do(func() {
		img := make([]byte, 128*512)
		copy(img, "SVFROOT1")
		for i := 512; i < len(img); i++ {
			img[i] = byte(i)
		}
		rootfsImg = img
	})
	return rootfsImg
}

var (
	rootfsOnce sync.Once
	rootfsImg  []byte
)

// attachDevices gives the machine its virtio-mmio devices: a block device
// always, a network device when the kernel config supports it (§6.1:
// CONFIG_VIRTIO_BLK and CONFIG_VIRTIO_NET).
func attachDevices(m *kvm.Machine, preset kernelgen.Preset) {
	m.Devices = append(m.Devices,
		virtio.NewDevice(virtio.IDBlk, virtio.FeatBlkFlush, &virtio.BlkBackend{Image: RootfsImage()}))
	if preset.Networking {
		m.Devices = append(m.Devices,
			virtio.NewDevice(virtio.IDNet, virtio.FeatNetMac, virtio.NetBackend{}))
	}
}
