package fleet

import (
	"fmt"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
)

// benchBootOne runs a single boot through a fresh single-worker fleet
// against the given cache (priming it, or seeding a warm donor when the
// orchestrator it registers through has EnableWarm set), and returns the
// engine, host, and image for reuse.
func benchSeed(b *testing.B, cache *Cache, warm bool) (*sim.Engine, *kvm.Host, *Image) {
	b.Helper()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	o := New(eng, host, Config{Workers: 1, Cache: cache, EnableWarm: warm})
	img, err := o.RegisterImage("fn", kernelgen.Lupine(), kernelgen.BuildInitrd(7, 1<<20))
	if err != nil {
		b.Fatal(err)
	}
	eng.Go("seed", func(p *sim.Proc) {
		if err := o.Submit(p, Request{Tenant: "seed", Image: img}); err != nil {
			b.Error(err)
		}
		o.Close()
	})
	eng.Run()
	if err := o.Err(); err != nil {
		b.Fatal(err)
	}
	return eng, host, img
}

// benchRun boots 2*workers requests and returns the virtual makespan.
// mode selects the tier exercised:
//
//	cold    fresh cache every run — every image miss pays the measurement
//	cached  shared pre-resolved cache — cold boots skip the measurement
//	warm    donor snapshot seeded — boots restore instead of cold-booting
func benchRun(b *testing.B, workers int, mode string, shared *Cache) time.Duration {
	b.Helper()
	cfg := Config{Workers: workers}
	var eng *sim.Engine
	var host *kvm.Host
	var img *Image
	switch mode {
	case "cold":
		eng = sim.NewEngine()
		host = kvm.NewHost(eng, costmodel.Default(), 1)
		o := New(eng, host, cfg)
		var err error
		if img, err = o.RegisterImage("fn", kernelgen.Lupine(), kernelgen.BuildInitrd(7, 1<<20)); err != nil {
			b.Fatal(err)
		}
		o.Close() // this orchestrator only registered the image
		eng.Run()
	case "cached":
		cfg.Cache = shared
		eng = sim.NewEngine()
		host = kvm.NewHost(eng, costmodel.Default(), 1)
		o := New(eng, host, Config{Workers: 1, Cache: shared})
		var err error
		if img, err = o.RegisterImage("fn", kernelgen.Lupine(), kernelgen.BuildInitrd(7, 1<<20)); err != nil {
			b.Fatal(err)
		}
		o.Close()
		eng.Run()
	case "warm":
		cfg.EnableWarm = true
		// The seed run cold-boots the donor on the same engine and host,
		// so measured boots below all take the warm tier.
		eng, host, img = benchSeed(b, NewCache(), true)
	}

	o := New(eng, host, cfg)
	start := eng.Now()
	if err := (Workload{
		Arrivals: 2 * workers,
		Images:   []*Image{img},
		Seed:     1,
	}).Run(eng, o); err != nil {
		b.Fatal(err)
	}
	eng.Run()
	if err := o.Err(); err != nil {
		b.Fatal(err)
	}
	return eng.Now().Sub(start)
}

// BenchmarkFleetThroughput compares cold, cached-cold, and warm boot
// throughput at 1, 8, and 64 workers. The reported metric is virtual
// boots per virtual second — real-time ns/op only measures the
// simulator's own speed.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, mode := range []string{"cold", "cached", "warm"} {
		for _, workers := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(b *testing.B) {
				var shared *Cache
				if mode == "cached" {
					// Prime once so every measured run hits the cache.
					shared = NewCache()
					benchSeed(b, shared, false)
				}
				boots := 2 * workers
				var virtual time.Duration
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					virtual += benchRun(b, workers, mode, shared)
				}
				b.StopTimer()
				perSec := float64(boots*b.N) / virtual.Seconds()
				b.ReportMetric(perSec, "vboots/vsec")
				b.ReportMetric(virtual.Seconds()/float64(b.N)*1000, "vms/run")
			})
		}
	}
}
