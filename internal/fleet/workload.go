package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/severifast/severifast/internal/sim"
)

// Workload is a synthetic open-loop arrival process: exponential
// inter-arrival gaps (Poisson arrivals), requests spread round-robin over
// tenants and images. Open-loop means arrivals do not wait for boots — a
// congested fleet builds queue depth (and, with a bounded queue, sheds
// load) exactly as the paper's serverless motivation describes.
type Workload struct {
	// Arrivals is the total request count.
	Arrivals int
	// MeanInterarrival is the Poisson process's mean gap in virtual time.
	MeanInterarrival time.Duration
	// ExecTime is each function's service time once its VM is up.
	ExecTime time.Duration
	// Tenants are cycled across arrivals; empty means one tenant "t0".
	Tenants []string
	// Images are cycled across arrivals; must be non-empty.
	Images []*Image
	// Seed drives the arrival draws. Same seed, same arrival schedule.
	Seed int64
}

// Run spawns the arrival process on eng and closes the orchestrator after
// the last submission, so a following eng.Run() drains the pool and
// terminates. Rejected submissions are counted in the metrics, not
// retried — the open-loop source never blocks.
func (w Workload) Run(eng *sim.Engine, o *Orchestrator) error {
	if len(w.Images) == 0 {
		return fmt.Errorf("fleet: workload has no images")
	}
	tenants := w.Tenants
	if len(tenants) == 0 {
		tenants = []string{"t0"}
	}
	eng.Go("fleet-arrivals", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(w.Seed))
		for i := 0; i < w.Arrivals; i++ {
			gap := time.Duration(-math.Log(1-rng.Float64()) * float64(w.MeanInterarrival))
			p.Sleep(gap)
			_ = o.Submit(p, Request{
				Tenant: tenants[i%len(tenants)],
				Image:  w.Images[i%len(w.Images)],
				Exec:   w.ExecTime,
			})
		}
		o.Close()
	})
	return nil
}
