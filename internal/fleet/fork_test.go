package fleet

import (
	"testing"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/trace"
)

// forkRun is everything one warm-fleet run produces that the fork path
// must keep byte-identical to the legacy copy path: the served tier and
// launch digest sequence and the per-tier virtual latencies.
type forkRun struct {
	tiers   []Tier
	digests [][32]byte
	cold    trace.Series
	warm    trace.Series
	host    *kvm.Host
}

func runWarmFleet(t *testing.T, legacy bool) forkRun {
	t.Helper()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	var run forkRun
	run.host = host
	o := New(eng, host, Config{
		Workers:           1,
		EnableWarm:        true,
		LegacyCopyRestore: legacy,
		OnServed: func(_ *sim.Proc, m *kvm.Machine, tier Tier) {
			run.tiers = append(run.tiers, tier)
			run.digests = append(run.digests, m.Launch.Digest())
		},
	})
	img, err := o.RegisterImage("fn", kernelgen.Lupine(), kernelgen.BuildInitrd(7, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, eng, o, Workload{
		Arrivals:         4,
		MeanInterarrival: 2 * time.Second,
		Images:           []*Image{img},
		Seed:             11,
	})
	m := o.Metrics()
	run.cold = append(trace.Series{}, m.Latency[TierCold]...)
	run.warm = append(trace.Series{}, m.Latency[TierWarm]...)
	return run
}

// TestForkVsColdEquality is the acceptance proof for the snapshot-fork
// warm path: the forked run and the legacy ciphertext-copy run must be
// indistinguishable in virtual time and in every launch digest — only
// host wall-clock work differs. It also proves the fork path actually
// ran (CoW fork adoptions recorded) and the legacy path did not.
func TestForkVsColdEquality(t *testing.T) {
	fork := runWarmFleet(t, false)
	legacy := runWarmFleet(t, true)

	if len(fork.tiers) != len(legacy.tiers) {
		t.Fatalf("served %d vs %d boots", len(fork.tiers), len(legacy.tiers))
	}
	for i := range fork.tiers {
		if fork.tiers[i] != legacy.tiers[i] {
			t.Fatalf("boot %d tier %v (fork) != %v (legacy)", i, fork.tiers[i], legacy.tiers[i])
		}
		// Cold boots must measure identically in both modes. Warm boots
		// differ in provenance by design: a fork inherits the donor's
		// measured digest, where a copy restore opens a fresh shared-key
		// context with the initial digest.
		if fork.tiers[i] != TierWarm && fork.digests[i] != legacy.digests[i] {
			t.Fatalf("boot %d launch digest diverged between fork and copy restore", i)
		}
	}
	// The fork path's O(1) digest reuse: every boot of the image — cold
	// or forked — carries the cold boot's measured digest.
	for i, d := range fork.digests {
		if d != fork.digests[0] {
			t.Fatalf("boot %d digest differs from the cold boot's", i)
		}
	}
	if len(fork.cold) != len(legacy.cold) || len(fork.warm) != len(legacy.warm) {
		t.Fatalf("latency series lengths diverged: cold %d/%d warm %d/%d",
			len(fork.cold), len(legacy.cold), len(fork.warm), len(legacy.warm))
	}
	for i := range fork.warm {
		if fork.warm[i] != legacy.warm[i] {
			t.Fatalf("warm boot %d virtual latency %v (fork) != %v (legacy)",
				i, fork.warm[i], legacy.warm[i])
		}
	}
	for i := range fork.cold {
		if fork.cold[i] != legacy.cold[i] {
			t.Fatalf("cold boot %d virtual latency %v (fork) != %v (legacy)",
				i, fork.cold[i], legacy.cold[i])
		}
	}

	_, forkCounters := fork.host.HostStats.Snapshot()
	_, legacyCounters := legacy.host.HostStats.Snapshot()
	if forkCounters["guestmem.fork.adopted"] == 0 {
		t.Fatal("fork run never adopted a fork source")
	}
	if legacyCounters["guestmem.fork.adopted"] != 0 {
		t.Fatalf("legacy run adopted %d forks, want 0", legacyCounters["guestmem.fork.adopted"])
	}
}

// TestPrewarmStandbys: Prewarm builds forked standbys up to the pool
// cap, later warm boots pop them instead of forking inline, and
// EvictWarm clears the whole pool.
func TestPrewarmStandbys(t *testing.T) {
	// Standalone mode: Serve boots synchronously so the engine drains
	// completely between the test's phases (a parked worker would
	// deadlock the drain).
	eng, o, img := testFleet(t, Config{Standalone: true, EnableWarm: true, WarmPoolSize: 2})
	submit := func(n int) {
		t.Helper()
		eng.Go("submit", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				o.Serve(p, Request{Tenant: "t0", Image: img})
				p.Sleep(time.Second)
			}
		})
		eng.Run()
		if err := o.Err(); err != nil {
			t.Fatal(err)
		}
	}
	// Seed the warm tier with one cold boot.
	submit(1)
	if !img.HasWarm() {
		t.Fatal("warm tier not seeded after cold boot")
	}
	var added int
	var err error
	eng.Go("prewarm", func(p *sim.Proc) {
		added, err = o.Prewarm(p, img, 5)
	})
	eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 || o.StandbyCount(img) != 2 {
		t.Fatalf("prewarm added %d standbys (count %d), want 2 (pool cap)", added, o.StandbyCount(img))
	}
	// Two more boots must consume the standbys.
	submit(2)
	if o.StandbyCount(img) != 0 {
		t.Fatalf("standby count %d after 2 boots, want 0", o.StandbyCount(img))
	}
	m := o.Metrics()
	if m.Boots[TierWarm] != 2 {
		t.Fatalf("warm boots %d, want 2", m.Boots[TierWarm])
	}
	o.EvictWarm(img)
	if img.HasWarm() || o.StandbyCount(img) != 0 {
		t.Fatal("EvictWarm left warm state behind")
	}
	o.Close()
	eng.Run()
}
