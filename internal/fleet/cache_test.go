package fleet

import (
	"testing"

	"github.com/severifast/severifast/internal/firecracker"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/verifier"
)

func testSpec(seed byte) ImageSpec {
	kernel := make([]byte, 8192)
	initrd := make([]byte, 4096)
	for i := range kernel {
		kernel[i] = byte(i) ^ seed
	}
	for i := range initrd {
		initrd[i] = byte(i*3) ^ seed
	}
	return ImageSpec{
		Kernel:       kernel,
		Initrd:       initrd,
		Cmdline:      "console=ttyS0",
		VCPUs:        1,
		MemSize:      64 << 20,
		Level:        sev.SNP,
		Policy:       firecracker.LaunchPolicy(sev.SNP, false),
		VerifierSeed: 1,
	}
}

func TestKeyOfIsContentAddressed(t *testing.T) {
	base := testSpec(0)
	k0, h0 := KeyOf(base)
	k1, h1 := KeyOf(testSpec(0))
	if k0 != k1 || h0 != h1 {
		t.Fatal("identical specs produced different keys")
	}

	mutations := map[string]func(*ImageSpec){
		"kernel":  func(s *ImageSpec) { s.Kernel = append([]byte{0xFF}, s.Kernel...) },
		"initrd":  func(s *ImageSpec) { s.Initrd = append([]byte{0xFF}, s.Initrd...) },
		"cmdline": func(s *ImageSpec) { s.Cmdline += " quiet" },
		"vcpus":   func(s *ImageSpec) { s.VCPUs = 4 },
		"memsize": func(s *ImageSpec) { s.MemSize *= 2 },
		"level":   func(s *ImageSpec) { s.Level = sev.ES },
		"policy":  func(s *ImageSpec) { s.Policy.NoKeySharing = false },
		"seed":    func(s *ImageSpec) { s.VerifierSeed = 7 },
		"ptables": func(s *ImageSpec) { s.PreEncryptPageTables = true },
	}
	for name, mutate := range mutations {
		s := testSpec(0)
		mutate(&s)
		if k, _ := KeyOf(s); k == k0 {
			t.Errorf("mutating %s did not change the key", name)
		}
	}
}

func TestCacheCounters(t *testing.T) {
	c := NewCache()
	spec := testSpec(0)
	key, hashes := KeyOf(spec)

	if mi := c.Get(key); mi != nil {
		t.Fatal("hit on empty cache")
	}
	mi, err := c.Plan(key, hashes, spec)
	if err != nil {
		t.Fatal(err)
	}
	if mi2 := c.Get(key); mi2 != mi {
		t.Fatal("Get after Plan did not return the published entry")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Plans != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 plan, 1 entry", s)
	}
	if want := uint64(len(spec.Kernel) + len(spec.Initrd)); s.HashedBytes != want {
		t.Fatalf("HashedBytes = %d, want %d", s.HashedBytes, want)
	}
	if got := s.HitRatio(); got != 0.5 {
		t.Fatalf("HitRatio = %v, want 0.5", got)
	}
}

func TestCacheFirstWriterWins(t *testing.T) {
	c := NewCache()
	spec := testSpec(0)
	key, hashes := KeyOf(spec)
	a, err := c.Plan(key, hashes, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Plan(key, hashes, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Plan of same key did not return the first entry")
	}
	if s := c.Stats(); s.Plans != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 plans collapsing to 1 entry", s)
	}
}

// TestCacheDigestMatchesMeasure pins the cache's inline digest fold to
// measure.ExpectedDigest: the cache must predict exactly what the PSP will
// measure, or attestation against cached artifacts breaks.
func TestCacheDigestMatchesMeasure(t *testing.T) {
	for _, seed := range []byte{0, 1, 2} {
		spec := testSpec(seed)
		mi, hit, err := NewCache().Resolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatal("resolve on empty cache reported a hit")
		}
		want, err := measure.ExpectedDigest(measure.Config{
			Verifier:             verifier.Image(spec.VerifierSeed),
			Hashes:               mi.Hashes,
			Cmdline:              spec.Cmdline,
			VCPUs:                spec.VCPUs,
			MemSize:              spec.MemSize,
			Level:                spec.Level,
			Policy:               spec.Policy,
			PreEncryptPageTables: spec.PreEncryptPageTables,
		})
		if err != nil {
			t.Fatal(err)
		}
		if mi.Digest != want {
			t.Fatalf("seed %d: cache digest %x != measure.ExpectedDigest %x", seed, mi.Digest[:8], want[:8])
		}
		if mi.PreEncryptedBytes <= 0 {
			t.Fatal("plan claims no pre-encrypted bytes")
		}
	}
}
