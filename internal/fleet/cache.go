// The measured-image cache memoizes the launch-measurement artifacts a
// cold SEV boot needs: the §4.3 component hashes, the measure.Plan region
// list, and the expected launch digest. All three depend only on the image
// content and the launch parameters, so a fleet booting the same function
// image thousands of times should compute them exactly once — the same
// amortization SNPGuard applies to verified launch artifacts, moved onto
// the orchestrator's admission path.
//
// The cache is safe for real (OS-thread) concurrency: one cache is meant
// to be shared by every orchestrator shard on a machine, each running its
// own simulation engine on its own goroutine.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/psp"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/verifier"
)

// ImageSpec is everything that determines a launch measurement. Two specs
// with equal keys boot byte-identical measured guests.
type ImageSpec struct {
	Kernel  []byte // the boot image (bzImage or vmlinux)
	Initrd  []byte
	Cmdline string
	VCPUs   int
	MemSize uint64
	Level   sev.Level
	Policy  sev.Policy
	// VerifierSeed selects the boot verifier build (firecracker.Config).
	VerifierSeed int64
	// PreEncryptPageTables mirrors the Fig. 7 ablation flag.
	PreEncryptPageTables bool
}

// Key is the content address of a measured image: SHA-256 over the
// component hashes (kernel, initrd, cmdline) and every launch parameter
// that feeds the measurement.
type Key [32]byte

// KeyOf content-addresses a spec. It performs the one full host-side pass
// over the image bytes (SHA-256 of kernel, initrd, cmdline); callers that
// boot the same spec repeatedly should compute the key once and use
// Cache.Get afterwards.
func KeyOf(spec ImageSpec) (Key, measure.ComponentHashes) {
	h := measure.HashComponents(spec.Kernel, spec.Initrd, spec.Cmdline)
	d := sha256.New()
	d.Write([]byte("SVF-FLEET-IMG1"))
	d.Write(h.Kernel[:])
	d.Write(h.Initrd[:])
	d.Write(h.Cmdline[:])
	var meta [8]byte
	le := binary.LittleEndian
	le.PutUint64(meta[:], spec.Policy.Encode())
	d.Write(meta[:])
	le.PutUint64(meta[:], uint64(spec.VCPUs))
	d.Write(meta[:])
	le.PutUint64(meta[:], spec.MemSize)
	d.Write(meta[:])
	le.PutUint64(meta[:], uint64(spec.VerifierSeed))
	d.Write(meta[:])
	flags := byte(0)
	if spec.PreEncryptPageTables {
		flags |= 1
	}
	d.Write([]byte{byte(spec.Level), flags})
	var k Key
	copy(k[:], d.Sum(nil))
	return k, h
}

// MeasuredImage is one cache entry: the memoized measurement artifacts for
// an image/parameter combination. Entries are immutable once published;
// region Data slices are shared between boots and must not be mutated
// (guest memory copies them on write).
type MeasuredImage struct {
	Key    Key
	Hashes measure.ComponentHashes
	// Regions is the pre-encryption plan (measure.Plan output).
	Regions []measure.Region
	// Digest is the expected launch measurement for the plan — the value
	// attestation compares against the PSP's report.
	Digest [32]byte
	// PreEncryptedBytes is the plan's total payload, the quantity that
	// drives the ~8 ms pre-encryption cost.
	PreEncryptedBytes int
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits   uint64
	Misses uint64
	// Plans counts measure.Plan executions — the work the cache exists to
	// amortize. Within one shard Plans == Misses; across shards two racing
	// planners of the same key both count, but the loser's entry is
	// discarded and the key is never planned again once published.
	Plans uint64
	// HashedBytes counts image bytes hashed by measurement passes (the
	// uncached cold boots' in-band hashing work).
	HashedBytes uint64
	// Evictions counts entries removed by Evict — the degraded-mode
	// policy discarding entries it proved poisoned.
	Evictions uint64
	Entries   int
}

// HitRatio is Hits / (Hits + Misses).
func (s CacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is the content-addressed measured-image cache.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*MeasuredImage
	stats   CacheStats
	subs    []func(*MeasuredImage)

	// fold memoizes digest-chain transitions across plans, so image
	// families sharing a component prefix (same kernel, different
	// initrd) re-fold only their differing suffix — the delta launch
	// measurement path.
	fold *psp.FoldMemo
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[Key]*MeasuredImage), fold: psp.NewFoldMemo(nil)}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// Get looks a key up, counting the hit or miss. A nil return means the
// caller must run Plan (and pay the measurement pass).
func (c *Cache) Get(key Key) *MeasuredImage {
	c.mu.Lock()
	defer c.mu.Unlock()
	if mi, ok := c.entries[key]; ok {
		c.stats.Hits++
		return mi
	}
	c.stats.Misses++
	return nil
}

// Contains reports whether key is published, without counting a hit or
// miss. Placement policies peek at foreign hosts' caches through it; only
// boots that actually consume an entry should move the hit/miss counters.
func (c *Cache) Contains(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Plan computes the measurement artifacts for a key and publishes them.
// If another shard published the key first, its entry wins and is
// returned, so all boots of one image share one region list.
func (c *Cache) Plan(key Key, hashes measure.ComponentHashes, spec ImageSpec) (*MeasuredImage, error) {
	cfg := measure.Config{
		Verifier:             verifier.Image(spec.VerifierSeed),
		Hashes:               hashes,
		Cmdline:              spec.Cmdline,
		VCPUs:                spec.VCPUs,
		MemSize:              spec.MemSize,
		Level:                spec.Level,
		Policy:               spec.Policy,
		PreEncryptPageTables: spec.PreEncryptPageTables,
	}
	// Plan outside the lock: planning is the expensive part, and shards
	// racing on a brand-new key must not serialize the whole cache.
	regions, err := measure.Plan(cfg)
	if err != nil {
		return nil, err
	}
	// Fold the expected digest over the plan we just built rather than
	// calling measure.ExpectedDigest, which would re-plan from scratch.
	// FoldRegionsMemo hashes region contents across the hostwork pool
	// and folds serially through the delta memo — bit-identical to the
	// sequential extend loop, with chain prefixes shared across image
	// variants.
	digest := measure.FoldRegionsMemo(psp.InitialDigest(spec.Policy, spec.Level), regions, c.fold)
	mi := &MeasuredImage{
		Key:               key,
		Hashes:            hashes,
		Regions:           regions,
		Digest:            digest,
		PreEncryptedBytes: measure.PreEncryptedBytes(regions),
	}
	c.mu.Lock()
	c.stats.Plans++
	c.stats.HashedBytes += uint64(len(spec.Kernel) + len(spec.Initrd))
	if prev, ok := c.entries[key]; ok {
		c.mu.Unlock()
		return prev, nil
	}
	c.entries[key] = mi
	subs := append([]func(*MeasuredImage){}, c.subs...)
	c.mu.Unlock()
	// Notify outside the lock: subscribers (e.g. key-broker reference
	// provisioning) may do their own locking or I/O. Only a winning
	// insert notifies — a losing racer's entry was discarded above.
	for _, fn := range subs {
		fn(mi)
	}
	return mi, nil
}

// Evict removes a published entry, reporting whether it was present. The
// degraded-mode boot policy uses it to discard an entry it has proved
// poisoned (the entry's prediction disagrees with a launch measured from
// bytes that still match their registration hashes); the next boot of the
// key replans from ground truth.
func (c *Cache) Evict(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		return false
	}
	delete(c.entries, key)
	c.stats.Evictions++
	return true
}

// Subscribe registers fn to run for every measured image the cache holds:
// first for all already-published entries, then for each future insert.
// The fleet orchestrator uses it to provision the key broker's
// reference-value store straight from the cache, so allowed launch
// digests are derived from what the fleet actually measures rather than
// hand-listed. fn may be called from any shard's goroutine and must be
// safe for concurrent use.
func (c *Cache) Subscribe(fn func(*MeasuredImage)) {
	c.mu.Lock()
	existing := make([]*MeasuredImage, 0, len(c.entries))
	for _, mi := range c.entries {
		existing = append(existing, mi)
	}
	c.subs = append(c.subs, fn)
	c.mu.Unlock()
	for _, mi := range existing {
		fn(mi)
	}
}

// Resolve is Get-or-Plan by spec, for callers holding raw image bytes.
func (c *Cache) Resolve(spec ImageSpec) (*MeasuredImage, bool, error) {
	key, hashes := KeyOf(spec)
	if mi := c.Get(key); mi != nil {
		return mi, true, nil
	}
	mi, err := c.Plan(key, hashes, spec)
	return mi, false, err
}
