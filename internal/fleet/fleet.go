// Package fleet is a concurrent microVM boot orchestrator: requests are
// admitted into a bounded worker pool with per-tenant fair queueing and
// backpressure, and each boot is served through the fastest available
// tier — a warm shared-key snapshot restore (§7), a cold boot with
// memoized measurement artifacts (the measured-image cache), or a full
// cold boot including the measurement pass. All scheduling, queueing, and
// retry backoff runs in internal/sim virtual time, so fleet runs are
// deterministic and PSP contention between concurrent launches emerges
// from the shared host model rather than from host-OS scheduling.
package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/attest"
	"github.com/severifast/severifast/internal/firecracker"
	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/policy"
	"github.com/severifast/severifast/internal/psp"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/snapshot"
	"github.com/severifast/severifast/internal/telemetry"
)

// Errors returned by Submit.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity.
	ErrQueueFull = errors.New("fleet: queue full")
	// ErrClosed reports submission after Close.
	ErrClosed = errors.New("fleet: orchestrator closed")
	// ErrDigestMismatch reports a PSP-measured launch digest that differs
	// from the measured-image cache's prediction.
	ErrDigestMismatch = errors.New("fleet: launch digest mismatch")
	// ErrDeadlineExceeded reports a boot abandoned because its per-request
	// virtual-time budget (Config.BootDeadline) ran out before an attempt
	// could finish — including when the remaining budget cannot cover the
	// next retry backoff.
	ErrDeadlineExceeded = errors.New("fleet: boot deadline exceeded")
	// ErrKBSUnreachable marks a key-broker transport failure: the broker
	// did not answer at all (as opposed to answering with a denial). It is
	// transient — the retry loop retries it like an injected fault — and
	// it feeds the circuit breaker's failure count.
	ErrKBSUnreachable = errors.New("fleet: key broker unreachable")
	// ErrReattest marks an exchange denied while the host's enrollment was
	// being swapped underneath it (Reenroll mid-exchange): the evidence
	// straddled two platform identities, so the denial is not a verdict on
	// either. It is transient — the retry re-runs the exchange under the
	// settled identity, bounded by the ordinary retry/backoff budget.
	ErrReattest = errors.New("fleet: re-attestation required")
	// ErrWarmInvalidated marks a warm boot whose donor pool was evicted
	// between fork and serve (a revocation storm invalidating the donor's
	// admission): the forked guest must never go live. It is transient —
	// the retry finds the pool unseeded and boots cold.
	ErrWarmInvalidated = errors.New("fleet: warm pool invalidated mid-boot")
)

// Config sizes the orchestrator.
type Config struct {
	// Name prefixes the orchestrator's simulation process names
	// ("<name>-worker-3", "<name>-exec-17"). Defaults to "fleet". A
	// cluster running one orchestrator per host gives each shard a
	// distinct name so telemetry tracks stay per-host instead of
	// interleaving on shared track names.
	Name string
	// Workers is the boot concurrency (pool size). Defaults to 1.
	Workers int
	// QueueDepth bounds queued (not yet dispatched) requests across all
	// tenants; submissions beyond it are rejected. 0 means unbounded.
	QueueDepth int
	// EnableWarm turns on the warm tier: after the first successful cold
	// boot of an image the orchestrator captures a fork-ready shared-key
	// snapshot, and later boots of that image fork from it (CoW page
	// aliasing with the donor's launch digest inherited). Implies
	// launching with a key-sharing policy, which is visible in the
	// measurement.
	EnableWarm bool
	// LegacyCopyRestore forces the warm tier onto the pre-fork path:
	// ciphertext replay through snapshot.Restore and a fresh
	// InitialDigest-based launch context. Virtual time is identical to
	// the fork path by construction; the flag exists so the fork-vs-copy
	// equality test can prove it, and as a one-release escape hatch.
	LegacyCopyRestore bool
	// WarmPoolSize caps the standby pool Prewarm may build per image
	// (forked guests held ready so a warm boot pops a machine instead of
	// forking inline). 0 disables standbys: every warm boot forks on
	// demand, which keeps virtual timing identical to the copy path.
	WarmPoolSize int
	// Standalone disables the worker pool: no worker processes are
	// spawned and Submit rejects everything. Callers drive boots
	// synchronously with Serve from their own processes instead. The
	// severifast.Pool facade uses it so the engine fully drains between
	// Boot calls (a parked worker would deadlock the engine's drain).
	Standalone bool
	// Retry bounds recovery from injected transient faults.
	Retry RetryPolicy
	// Faults optionally injects transient boot faults.
	Faults *FaultPlan
	// Cache is the measured-image cache. Nil allocates a private one;
	// pass a shared cache to amortize measurement across shards.
	Cache *Cache

	// Telemetry, when set, receives the fleet's counters and latency
	// series as registry instruments, per-boot "fleet.boot" spans on the
	// worker tracks, and "kbs.exchange" spans on the kbs track. Install
	// the same registry on the host (kvm.Host.Telemetry) and engine
	// (sim.Engine.SetTracer) to get the full per-boot span trees and the
	// PSP queueing picture in one trace. Nil disables the mirror.
	Telemetry *telemetry.Registry

	// BootDeadline, when positive, is each request's virtual-time budget
	// from admission to VM up. A request whose budget is spent — or whose
	// remaining budget cannot cover the next retry backoff — fails with
	// ErrDeadlineExceeded instead of holding a worker.
	BootDeadline time.Duration
	// Breaker, when Threshold > 0, arms the key-broker circuit breaker:
	// consecutive broker transport failures open it, and while open every
	// exchange fails fast with a kbs "unavailable" denial instead of
	// burning the retry budget against a dead broker.
	Breaker BreakerPolicy
	// DegradedFallback enables the degraded-mode boot policy: on a launch
	// digest mismatch the orchestrator re-hashes the canonical image bytes
	// against the registration-time component hashes; if they are intact
	// the measured-image cache entry itself was poisoned, so the entry is
	// evicted and the boot retried once on the cold path with a fresh
	// plan. Mismatching image bytes still fail the boot — only provable
	// cache poisoning is recovered.
	DegradedFallback bool
	// InsecureSkipDigestCheck disables the launch-digest comparison
	// against the measured-image cache's prediction. It exists only so
	// tests and the chaos harness can model a broken verifier and prove
	// the tamper oracle reports an ESCAPE; never set it in real
	// configurations.
	InsecureSkipDigestCheck bool
	// OnServed, when set, observes every successfully served boot with
	// its machine, after attestation. Tests and the chaos oracle use it
	// to audit the launch digests of boots that actually went live.
	OnServed func(p *sim.Proc, m *kvm.Machine, tier Tier)

	// Admission is the policy engine every request must pass before a
	// worker attempts its first boot — and again at serve time if the
	// policy store mutated mid-boot (certificates are pinned to the
	// store version that minted them). Nil defaults to
	// policy.Permissive(), which grants everything: the gate is always
	// on the path, only the policy varies. Share the broker's engine
	// (kbs.Broker.PolicyEngine) so fleet admission and key release
	// answer to the same trust domains.
	Admission *policy.Engine

	// KBS, when set, gates every boot behind an attest→key-release
	// exchange against the key broker: the guest requests a challenge,
	// the PSP signs a report binding the nonce and the guest's ephemeral
	// key, and the boot only succeeds once the broker releases the
	// tenant secret. Reference launch digests are provisioned into the
	// broker automatically from the measured-image cache.
	KBS kbs.Service
	// Enrollment is the host platform's identity under the broker's key
	// authority (kbs.Authority.Enroll of the host PSP). Required when
	// KBS is set.
	Enrollment *kbs.Enrollment
	// AgentSeed derives each boot's guest attestation agent key.
	AgentSeed int64

	// Launch parameters applied to every image.
	Level   sev.Level // defaults to sev.SNP
	Scheme  firecracker.Scheme
	VCPUs   int
	MemSize uint64
}

func (c *Config) fillDefaults() {
	if c.Name == "" {
		c.Name = "fleet"
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Level == sev.None {
		c.Level = sev.SNP
	}
	if c.Scheme == firecracker.SchemeStock {
		c.Scheme = firecracker.SchemeSEVeriFastBz
	}
	if c.VCPUs == 0 {
		c.VCPUs = 1
	}
	if c.MemSize == 0 {
		c.MemSize = 256 << 20
	}
	if c.Cache == nil {
		c.Cache = NewCache()
	}
	if c.Admission == nil {
		c.Admission = policy.Permissive()
	}
}

// Image is a registered function image: the artifacts plus the memoized
// content address. Registration does the host-side hash pass once; every
// subsequent boot reuses the key.
type Image struct {
	Name string

	preset kernelgen.Preset
	art    *kernelgen.Artifacts
	spec   ImageSpec
	key    Key
	hashes measure.ComponentHashes

	// Warm-tier state, populated after the first cold boot.
	snap      *snapshot.Image
	donor     *kvm.Machine
	fork      *snapshot.Fork
	capturing bool
	// warmEpoch bumps on every EvictWarm. In-flight warm boots capture it
	// at fork time and re-check it at serve time, so a pool invalidated
	// mid-boot (donor admitted under a since-revoked claim) can never
	// serve a guest forked from the stale donor.
	warmEpoch int
}

// CacheKey returns the image's content address in the measured-image cache.
func (img *Image) CacheKey() Key { return img.key }

// Spec returns the image's launch spec. The Kernel/Initrd slices are the
// canonical interned buffers; treat them as read-only.
func (img *Image) Spec() ImageSpec { return img.spec }

// HasWarm reports whether the image's warm tier is seeded: either this
// orchestrator captured a snapshot after a cold boot, or one was adopted
// from another host via AdoptWarm.
func (img *Image) HasWarm() bool { return img.snap != nil }

// WarmState returns the image's warm-tier snapshot and the donor machine
// whose launch context holds the shared memory-encryption key, or nils if
// the warm tier is not seeded. A cluster publishing the warm pool across
// hosts seals the snapshot (snapshot.EncodeSealed) before it leaves the
// host.
func (img *Image) WarmState() (*snapshot.Image, *kvm.Machine) {
	return img.snap, img.donor
}

// AdoptWarm seeds the image's warm tier from another host's capture: snap
// is the (transferred, seal-verified) snapshot and donor the machine whose
// launch context carries the shared key. Adoption models the sealed-channel
// key transport of a cross-host warm pool; subsequent boots of the image on
// this orchestrator restore warm instead of cold-booting. A warm tier that
// is already seeded is left untouched. Callers gating boots on a KBS must
// ensure the warm-restore reference digest was provisioned — the donor
// host's capture does this when broker and cluster share a reference store.
func (img *Image) AdoptWarm(snap *snapshot.Image, donor *kvm.Machine) {
	if snap == nil || donor == nil || img.snap != nil {
		return
	}
	img.snap, img.donor = snap, donor
	// Rebuild the fork source from the donor so adopted warm tiers fork
	// too. The donor's launch context must be finished for forks to
	// inherit its digest; otherwise the image stays on the copy path.
	if donor.Launch != nil && donor.Launch.State() == psp.StateRunning {
		if src, err := donor.Mem.ExportForkSource(); err == nil {
			img.fork = &snapshot.Fork{Img: snap, Src: src, Digest: donor.Launch.Digest()}
		}
	}
}

// AdoptWarmFork is AdoptWarm with the donor host's fork container passed
// through, so the adopting host skips the O(image) fork-source rebuild:
// the interned blob and its verified root digest travel with the sealed
// snapshot. A nil fork falls back to AdoptWarm's rebuild.
func (img *Image) AdoptWarmFork(snap *snapshot.Image, donor *kvm.Machine, fork *snapshot.Fork) {
	if fork == nil {
		img.AdoptWarm(snap, donor)
		return
	}
	if snap == nil || donor == nil || img.snap != nil {
		return
	}
	img.snap, img.donor, img.fork = snap, donor, fork
}

// ForkState returns the image's fork container, or nil when the warm
// tier is unseeded or copy-only. Clusters replicating the warm pool ship
// it alongside the sealed snapshot so adopting hosts fork directly.
func (img *Image) ForkState() *snapshot.Fork { return img.fork }

// Request is one boot demand.
type Request struct {
	Tenant string
	Image  *Image
	// Exec is the function service time once the VM is up; it runs on a
	// spawned process so the worker returns to the pool after boot.
	Exec time.Duration
	// Done, when set, is invoked on the worker process once the boot
	// concludes (before function execution): tier is the path served and
	// err is nil on success, the final error otherwise.
	Done func(p *sim.Proc, tier Tier, err error)
}

// request is a queued Request with admission bookkeeping.
type request struct {
	Request
	admitted sim.Time
	id       int
	// cert is the request's admission certificate; re-validated (and
	// re-evaluated when stale) before the boot goes live.
	cert *policy.Certificate
	// warmEpoch is the image's warm-pool epoch captured when this
	// attempt's warm branch began; see Image.warmEpoch.
	warmEpoch int
}

// Orchestrator is the fleet scheduler. All its mutable state is touched
// only by simulation processes of one engine (which run one at a time), so
// it needs no locking; the exception is the Cache, which is safe to share
// across orchestrators on different goroutines.
type Orchestrator struct {
	eng  *sim.Engine
	host *kvm.Host
	cfg  Config
	met  *Metrics
	brk  *breaker

	queues map[string][]*request // per-tenant FIFO
	ring   []string              // tenant round-robin order
	rrNext int
	queued int
	nextID int
	closed bool

	// planning single-flights the measurement pass within this shard:
	// workers wanting a key some other worker is already hashing wait on
	// its signal instead of duplicating the work.
	planning map[Key]*sim.Signal

	// standby holds prewarmed forked guests per image (Prewarm fills it,
	// warm boots drain it). Only populated when Config.WarmPoolSize > 0.
	standby map[Key][]*kvm.Machine

	idle []*sim.Proc // parked workers

	// enrollVer bumps on every Reenroll, so an exchange can tell whether
	// the platform identity moved underneath it (drift re-enrollment
	// landing mid-exchange) and classify the resulting denial as a
	// retryable re-attestation instead of a verdict.
	enrollVer int

	firstErr error

	// provMu guards provErr: reference-value provisioning runs from
	// cache-subscription callbacks, which foreign shards' goroutines may
	// invoke when the cache is shared.
	provMu  sync.Mutex
	provErr error
}

// New builds an orchestrator and spawns its worker pool on eng. Workers
// park until work arrives; call Close once all submissions are in so the
// pool drains and eng.Run can return.
func New(eng *sim.Engine, host *kvm.Host, cfg Config) *Orchestrator {
	cfg.fillDefaults()
	o := &Orchestrator{
		eng:      eng,
		host:     host,
		cfg:      cfg,
		met:      newMetrics(cfg.Telemetry),
		queues:   make(map[string][]*request),
		planning: make(map[Key]*sim.Signal),
		standby:  make(map[Key][]*kvm.Machine),
	}
	o.brk = newBreaker(cfg.Breaker, o.met)
	if cfg.KBS != nil {
		// Derive the broker's reference-value store from the measured
		// image cache: every digest the fleet can boot is provisioned as
		// it is planned (including entries other shards planned first).
		o.cfg.Cache.Subscribe(func(mi *MeasuredImage) {
			if err := o.cfg.KBS.Provision(mi.Digest, fmt.Sprintf("measured image %x", mi.Key[:6])); err != nil {
				o.provMu.Lock()
				if o.provErr == nil {
					o.provErr = fmt.Errorf("fleet: provisioning reference value: %w", err)
				}
				o.provMu.Unlock()
			}
		})
	}
	if !cfg.Standalone {
		for i := 0; i < cfg.Workers; i++ {
			eng.Go(fmt.Sprintf("%s-worker-%d", o.cfg.Name, i), o.worker)
		}
	}
	return o
}

// Serve boots one request synchronously on the calling process,
// bypassing the queue and worker pool — the Standalone-mode entry
// point. Accounting (metrics, retries, deadline budget, Done callback)
// is identical to a worker-served Submit.
func (o *Orchestrator) Serve(p *sim.Proc, req Request) {
	o.met.submitted()
	r := &request{Request: req, admitted: p.Now(), id: o.nextID}
	o.nextID++
	o.serve(p, r)
}

// Metrics exposes the registry; read it after eng.Run returns.
func (o *Orchestrator) Metrics() *Metrics { return o.met }

// Reenroll swaps the host's platform identity — the rolling-update step
// where a host's firmware moves to a new TCB and its PSP is re-enrolled
// under the authority (kbs.Authority.Enroll re-derives the VCEK chain).
// Admissions from this instant evaluate with the new identity. Exchanges
// already in flight may straddle the swap — a report signed under one
// VCEK redeemed with the other's chain — and their denials come back as
// retryable ErrReattest, bounded by the ordinary retry budget.
func (o *Orchestrator) Reenroll(e *kbs.Enrollment) {
	o.cfg.Enrollment = e
	o.enrollVer++
	o.met.reenrolled()
}

// CacheStats snapshots the measured-image cache counters.
func (o *Orchestrator) CacheStats() CacheStats { return o.cfg.Cache.Stats() }

// Err returns the first deterministic (non-injected) boot error, if any,
// or the first reference-value provisioning failure.
func (o *Orchestrator) Err() error {
	if o.firstErr != nil {
		return o.firstErr
	}
	o.provMu.Lock()
	defer o.provMu.Unlock()
	return o.provErr
}

// RegisterImage builds the preset's artifacts and content-addresses the
// image. The hash pass over the image bytes happens here, once — the §4.3
// out-of-band measurement the fleet amortizes across boots.
func (o *Orchestrator) RegisterImage(name string, preset kernelgen.Preset, initrd []byte) (*Image, error) {
	art, err := kernelgen.Cached(preset)
	if err != nil {
		return nil, err
	}
	var kernel []byte
	switch o.cfg.Scheme {
	case firecracker.SchemeSEVeriFastVmlinux:
		kernel = art.VMLinux
	default:
		kernel = art.BzImageLZ4
	}
	// Intern the canonical image buffers: every boot of this image stages
	// these exact slices, so digests memoize and guest pages alias one
	// copy (the CoW fleet path).
	artifact.Intern(kernel)
	artifact.Intern(initrd)
	spec := ImageSpec{
		Kernel:  kernel,
		Initrd:  initrd,
		Cmdline: preset.Cmdline,
		VCPUs:   o.cfg.VCPUs,
		MemSize: o.cfg.MemSize,
		Level:   o.cfg.Level,
		Policy:  firecracker.LaunchPolicy(o.cfg.Level, o.cfg.EnableWarm),
		// VerifierSeed 1 matches firecracker.Config's default fill.
		VerifierSeed: 1,
	}
	key, hashes := KeyOf(spec)
	return &Image{
		Name:   name,
		preset: preset,
		art:    art,
		spec:   spec,
		key:    key,
		hashes: hashes,
	}, nil
}

// Submit offers a request from a simulation process. It never blocks: the
// request is queued (waking a parked worker) or rejected with ErrQueueFull
// / ErrClosed, and the caller — an open-loop arrival process — moves on.
func (o *Orchestrator) Submit(p *sim.Proc, req Request) error {
	o.met.submitted()
	if o.cfg.Standalone {
		o.met.rejected()
		return fmt.Errorf("%w: standalone orchestrator serves synchronously (use Serve)", ErrClosed)
	}
	if o.closed {
		o.met.rejected()
		return ErrClosed
	}
	if o.cfg.QueueDepth > 0 && o.queued >= o.cfg.QueueDepth {
		o.met.rejected()
		return ErrQueueFull
	}
	r := &request{Request: req, admitted: p.Now(), id: o.nextID}
	o.nextID++
	if _, ok := o.queues[req.Tenant]; !ok {
		o.ring = append(o.ring, req.Tenant)
	}
	o.queues[req.Tenant] = append(o.queues[req.Tenant], r)
	o.queued++
	o.met.queueDepth(o.queued)
	o.wakeOne()
	return nil
}

// Close stops admission and wakes every parked worker so the pool drains
// queued requests and exits, letting eng.Run terminate.
func (o *Orchestrator) Close() {
	o.closed = true
	idle := o.idle
	o.idle = nil
	for _, w := range idle {
		o.eng.Wake(w)
	}
}

func (o *Orchestrator) wakeOne() {
	if n := len(o.idle); n > 0 {
		w := o.idle[n-1]
		o.idle = o.idle[:n-1]
		o.eng.Wake(w)
	}
}

// pop dequeues the next request fairly: round-robin across tenants, FIFO
// within a tenant, so one chatty tenant cannot starve the rest.
func (o *Orchestrator) pop() *request {
	if o.queued == 0 {
		return nil
	}
	n := len(o.ring)
	for i := 0; i < n; i++ {
		t := o.ring[(o.rrNext+i)%n]
		q := o.queues[t]
		if len(q) == 0 {
			continue
		}
		o.queues[t] = q[1:]
		o.queued--
		o.rrNext = (o.rrNext + i + 1) % n
		return q[0]
	}
	return nil
}

// worker is the pool loop: dequeue, serve, park when idle, exit on drain.
func (o *Orchestrator) worker(p *sim.Proc) {
	for {
		r := o.pop()
		if r == nil {
			if o.closed {
				return
			}
			o.idle = append(o.idle, p)
			p.Park()
			continue
		}
		o.serve(p, r)
	}
}

// serve runs one request to completion: boot (with retry on transient
// faults) under the per-request deadline budget, then hand execution off
// to a spawned process so the worker slot frees up for the next boot.
func (o *Orchestrator) serve(p *sim.Proc, r *request) {
	o.met.queueWait(p.Now().Sub(r.admitted))
	budget := sim.Budget{Start: r.admitted, Limit: o.cfg.BootDeadline}
	giveUp := func(tier Tier, err error) {
		o.met.failed(r.Tenant)
		if r.Done != nil {
			r.Done(p, tier, err)
		}
	}
	// The policy gate, before any boot work is spent: a denied tenant or
	// distrusted platform never reaches a worker's boot path. Denials are
	// deterministic verdicts, not transient faults — no retry.
	if err := o.admission(p, r); err != nil {
		giveUp(TierCold, err)
		return
	}
	for attempt := 0; ; attempt++ {
		if budget.Exceeded(p.Now()) {
			o.met.deadline()
			giveUp(TierCold, fmt.Errorf("%w: %v budget spent before attempt %d",
				ErrDeadlineExceeded, o.cfg.BootDeadline, attempt+1))
			return
		}
		attemptStart := p.Now()
		tier, err := o.bootOnce(p, r)
		if err == nil {
			o.met.boot(tier, p.Now().Sub(r.admitted), r.Tenant)
			// The serving attempt, retroactively: it time-encloses the
			// machine's vm.boot span on this worker's track, so Perfetto
			// shows boot tiers above the boot internals.
			o.met.reg.Record(p.Name(), "fleet.boot", attemptStart, p.Now(),
				telemetry.A("tier", tier.String()),
				telemetry.A("tenant", r.Tenant),
				telemetry.A("image", r.Image.Name))
			if r.Done != nil {
				r.Done(p, tier, nil)
			}
			o.finish(p, r)
			return
		}
		if !retryable(err) {
			if o.firstErr == nil {
				o.firstErr = err
			}
			giveUp(tier, err)
			return
		}
		o.met.fault()
		if attempt >= o.cfg.Retry.Max {
			giveUp(tier, err)
			return
		}
		delay := o.cfg.Retry.delay(attempt)
		if !budget.Unlimited() && delay >= budget.Remaining(p.Now()) {
			// The backoff alone would blow the deadline: give up now
			// rather than sleep into certain failure.
			o.met.deadline()
			giveUp(tier, fmt.Errorf("%w: %v backoff exceeds remaining budget: %w",
				ErrDeadlineExceeded, delay, err))
			return
		}
		if errors.Is(err, ErrReattest) {
			// The request is now queued behind the identity swap: the gauge
			// over these waits is the re-attestation queue depth a rolling
			// TCB update builds up on a straggler host.
			o.met.reattestWait(1)
			p.Sleep(delay)
			o.met.reattestWait(-1)
		} else {
			p.Sleep(delay)
		}
		o.met.retry()
	}
}

// retryable reports whether a boot-attempt error is transient: injected
// faults and key-broker transport failures are retried with backoff; any
// other error is deterministic and fails the request immediately.
func retryable(err error) bool {
	return errors.Is(err, ErrInjected) || errors.Is(err, ErrKBSUnreachable) ||
		errors.Is(err, ErrReattest) || errors.Is(err, ErrWarmInvalidated)
}

// finish runs the function body off-worker and records end-to-end latency.
func (o *Orchestrator) finish(p *sim.Proc, r *request) {
	if r.Exec <= 0 {
		o.met.endToEnd(p.Now().Sub(r.admitted))
		return
	}
	admitted := r.admitted
	o.eng.Go(fmt.Sprintf("%s-exec-%d", o.cfg.Name, r.id), func(ep *sim.Proc) {
		ep.Sleep(r.Exec)
		o.met.endToEnd(ep.Now().Sub(admitted))
	})
}

// bootOnce serves one boot attempt through the fastest available tier.
func (o *Orchestrator) bootOnce(p *sim.Proc, r *request) (Tier, error) {
	img := r.Image
	// Tier 1: warm boot — a prewarmed standby if the pool holds one,
	// otherwise a fork (or legacy copy restore) from the image's
	// shared-key snapshot.
	if o.cfg.EnableWarm && img.snap != nil {
		r.warmEpoch = img.warmEpoch
		if o.bootFault() {
			return TierWarm, o.injectFault(p)
		}
		if ms := o.standby[img.key]; len(ms) > 0 {
			m := ms[len(ms)-1]
			o.standby[img.key] = ms[:len(ms)-1]
			return TierWarm, o.admit(p, r, TierWarm, m)
		}
		m, err := o.warmRestore(p, img)
		if err != nil {
			return TierWarm, err
		}
		return TierWarm, o.admit(p, r, TierWarm, m)
	}

	// Tiers 2/3: cold boot; the cache decides whether the measurement
	// pass (hashing + planning + digest) is recomputed or reused.
	tier := TierCachedCold
	var mi *MeasuredImage
	for mi == nil {
		if sig, ok := o.planning[img.key]; ok {
			// Another worker is mid-measurement for this key: wait for it
			// rather than duplicating the hash pass, then re-check (the
			// planner may have failed).
			sig.Wait(p)
			continue
		}
		mi = o.cfg.Cache.Get(img.key)
		if mi != nil {
			break
		}
		tier = TierCold
		sig := sim.NewSignal()
		o.planning[img.key] = sig
		// The uncached path pays the in-band measurement pass in virtual
		// time: hashing the kernel and initrd on the VMM's critical path.
		p.Sleep(o.host.Model.Hash(len(img.spec.Kernel)) + o.host.Model.Hash(len(img.spec.Initrd)))
		var err error
		mi, err = o.cfg.Cache.Plan(img.key, img.hashes, img.spec)
		delete(o.planning, img.key)
		sig.Fire(o.eng)
		if err != nil {
			return tier, err
		}
	}
	if o.bootFault() {
		return tier, o.injectFault(p)
	}

	res, err := o.bootMachine(p, img, mi)
	if err != nil {
		return tier, err
	}
	if !o.cfg.InsecureSkipDigestCheck && res.LaunchDigest != mi.Digest {
		mismatch := fmt.Errorf("%w for image %q: cache predicts %x, PSP measured %x",
			ErrDigestMismatch, img.Name, mi.Digest[:8], res.LaunchDigest[:8])
		if o.cfg.DegradedFallback {
			return o.degradedRecover(p, r, img, mismatch)
		}
		return tier, mismatch
	}

	// Seed the warm tier: the first successful cold boot donates a
	// fork-ready snapshot. Forked boots inherit the donor's launch
	// digest, which the measured-image cache already provisioned into
	// the key broker — no extra reference value is needed.
	if o.cfg.EnableWarm && img.snap == nil && !img.capturing {
		img.capturing = true
		fork, err := snapshot.CaptureFork(p, res.Machine, res.LaunchDigest)
		if err != nil {
			return tier, err
		}
		img.snap, img.donor, img.fork = fork.Img, res.Machine, fork
		if o.cfg.KBS != nil && o.cfg.LegacyCopyRestore {
			// Legacy copy restores replay ciphertext without digest
			// extension, so their launch digest is the level/policy
			// initial value. Allow it explicitly — it is still derived,
			// not hand-listed.
			warmDigest := psp.InitialDigest(img.spec.Policy, img.spec.Level)
			if err := o.cfg.KBS.Provision(warmDigest, img.Name+" warm restore"); err != nil {
				return tier, fmt.Errorf("fleet: provisioning warm reference value: %w", err)
			}
		}
	}
	return tier, o.admit(p, r, tier, res.Machine)
}

// bootMachine performs one cold launch of an image from its measured
// artifacts.
func (o *Orchestrator) bootMachine(p *sim.Proc, img *Image, mi *MeasuredImage) (*firecracker.Result, error) {
	return firecracker.Boot(p, o.host, firecracker.Config{
		Preset:          img.preset,
		Artifacts:       img.art,
		Initrd:          img.spec.Initrd,
		Cmdline:         img.spec.Cmdline,
		VCPUs:           img.spec.VCPUs,
		MemSize:         img.spec.MemSize,
		Level:           img.spec.Level,
		Scheme:          o.cfg.Scheme,
		Hashes:          &mi.Hashes,
		Plan:            mi.Regions,
		VerifierSeed:    img.spec.VerifierSeed,
		AllowKeySharing: o.cfg.EnableWarm,
	})
}

// admission evaluates the request against the policy engine, reusing a
// still-valid certificate from a prior check. A certificate goes stale
// when the policy store mutates (revocation, rotation) or its folded
// claim expiry passes; staleness forces a fresh evaluation, so a
// revocation filed while the request was queued or booting flips the
// verdict at the next gate.
func (o *Orchestrator) admission(p *sim.Proc, r *request) error {
	now := p.Now()
	if r.cert != nil && o.cfg.Admission.Valid(r.cert, now) {
		return nil
	}
	ev := policy.Evidence{Tenant: r.Tenant}
	if e := o.cfg.Enrollment; e != nil {
		ev.ChipID = e.ChipID
		ev.TCB = e.TCB.Encode()
		ev.HasPlatform = true
	}
	cert, err := o.cfg.Admission.Evaluate(ev, now)
	if err != nil {
		if d := policy.DenialOf(err); d != nil {
			o.met.policyDenied(d.Rule, string(d.Reason))
		}
		return fmt.Errorf("fleet: admission refused for tenant %q: %w", r.Tenant, err)
	}
	r.cert = cert
	return nil
}

// admit finishes a successful boot: the policy gate re-checked against
// the current store state, the attest→key-release gate, then the
// OnServed observation hook for boots that actually went live.
func (o *Orchestrator) admit(p *sim.Proc, r *request, tier Tier, m *kvm.Machine) error {
	if err := o.admission(p, r); err != nil {
		return err
	}
	if err := o.attestExchange(p, r, m); err != nil {
		return err
	}
	// A warm guest forked before a pool eviction must never go live: the
	// donor it inherited its key and digest from was admitted under trust
	// that has since been withdrawn. The epoch check is last so it also
	// covers evictions landing during the attestation yields above; the
	// retry finds the pool unseeded and boots cold.
	if tier == TierWarm && r.warmEpoch != r.Image.warmEpoch {
		o.met.warmInvalidated()
		return fmt.Errorf("%w: image %q pool epoch moved %d -> %d",
			ErrWarmInvalidated, r.Image.Name, r.warmEpoch, r.Image.warmEpoch)
	}
	if o.cfg.OnServed != nil {
		o.cfg.OnServed(p, m, tier)
	}
	return nil
}

// degradedRecover handles a launch-digest mismatch under the degraded-mode
// policy. The mismatch has two possible roots: the measured-image cache
// entry was poisoned (its prediction lies) or the canonical image bytes
// were tampered with (the PSP honestly measured hostile bytes). The policy
// re-hashes the image bytes — charged in virtual time like any measurement
// pass — and compares against the registration-time component hashes, the
// tenant's out-of-band ground truth. Only a provably poisoned cache entry
// is recovered: the entry is evicted, replanned from ground truth, and the
// boot retried once on the cold path. Tampered image bytes fail the boot
// with the original mismatch in the chain.
func (o *Orchestrator) degradedRecover(p *sim.Proc, r *request, img *Image, mismatch error) (Tier, error) {
	p.Sleep(o.host.Model.Hash(len(img.spec.Kernel)) + o.host.Model.Hash(len(img.spec.Initrd)))
	fresh := measure.HashComponents(img.spec.Kernel, img.spec.Initrd, img.spec.Cmdline)
	if fresh != img.hashes {
		return TierCold, fmt.Errorf("fleet: degraded-mode check: image bytes diverge from registration hashes: %w", mismatch)
	}
	o.cfg.Cache.Evict(img.key)
	o.met.degraded()
	mi, err := o.cfg.Cache.Plan(img.key, img.hashes, img.spec)
	if err != nil {
		return TierCold, err
	}
	res, err := o.bootMachine(p, img, mi)
	if err != nil {
		return TierCold, err
	}
	if res.LaunchDigest != mi.Digest {
		// Still mismatching against a freshly planned prediction from
		// intact bytes: the launch path itself is hostile. Surface the
		// original error; no further recovery.
		return TierCold, fmt.Errorf("%w (persists after degraded replan)", mismatch)
	}
	return TierCold, o.admit(p, r, TierCold, res.Machine)
}

// warmRestore clones a guest from the image's donor snapshot. The fork
// path (default when the fork source is present) opens the launch with
// LaunchStartFork — donor key, ASID, and launch digest — and populates
// memory by CoW page aliasing; the legacy path copy-restores ciphertext
// under a fresh InitialDigest context. Both charge the same virtual
// time: identical PSP command, identical restore span and byte count,
// identical pvalidate pass. Only the host wall clock (and the digest
// provenance) differ. A fork source tampered since capture is refused
// and the image's whole warm pool is invalidated, so the next boot of
// the image re-seeds cold from measured bytes.
func (o *Orchestrator) warmRestore(p *sim.Proc, img *Image) (*kvm.Machine, error) {
	// Capture the pool state up front: an eviction landing during the
	// virtual-time yields below (a revocation storm invalidating the
	// pool mid-restore) must not tear the restore out from under us.
	// The guest is built from the captured state and then refused by
	// the pool-epoch check at admit time, so it is never served.
	snap, donor, fork := img.snap, img.donor, img.fork
	m := o.host.NewMachine(p, snap.Size, img.spec.Level)
	m.Timeline.Annotate("vmm", "firecracker")
	m.Timeline.Annotate("scheme", "warm-restore")
	m.Timeline.Annotate("level", img.spec.Level.String())
	m.PrepSEVHost(p)
	forked := fork != nil && !o.cfg.LegacyCopyRestore
	var ctx *psp.GuestContext
	var err error
	if forked {
		ctx, err = o.host.PSP.LaunchStartFork(p, m.Mem, donor.Launch, img.spec.Level, img.spec.Policy)
	} else {
		ctx, err = o.host.PSP.LaunchStartShared(p, m.Mem, donor.Launch, img.spec.Level, img.spec.Policy)
	}
	if err != nil {
		return nil, err
	}
	m.Launch = ctx
	m.Timeline.Annotate("asid", fmt.Sprintf("%d", ctx.ASID()))
	if forked {
		if err := fork.Restore(p, m); err != nil {
			if errors.Is(err, guestmem.ErrForkTampered) {
				o.EvictWarm(img)
			}
			return nil, err
		}
	} else {
		if err := snapshot.Restore(p, m, snap); err != nil {
			return nil, err
		}
	}
	p.Sleep(o.host.Model.Pvalidate(len(snap.Pages)*4096, o.host.PvalidatePageSize()))
	if _, err := ctx.LaunchFinish(p); err != nil {
		return nil, err
	}
	m.Timeline.Close(p.Now())
	return m, nil
}

// Prewarm forks up to n standby guests of img, bounded by
// Config.WarmPoolSize, paying the standard fork charges now so later
// warm boots of the image pop a ready machine instead of forking
// inline. It must run on a simulation process and requires a seeded
// warm tier. Returns how many standbys were added.
func (o *Orchestrator) Prewarm(p *sim.Proc, img *Image, n int) (int, error) {
	if !o.cfg.EnableWarm || img.snap == nil {
		return 0, fmt.Errorf("fleet: prewarm of %q: warm tier not seeded", img.Name)
	}
	added := 0
	for added < n {
		if o.cfg.WarmPoolSize <= 0 || len(o.standby[img.key]) >= o.cfg.WarmPoolSize {
			break
		}
		m, err := o.warmRestore(p, img)
		if err != nil {
			return added, err
		}
		o.standby[img.key] = append(o.standby[img.key], m)
		added++
	}
	return added, nil
}

// StandbyCount reports the image's current prewarmed-standby depth.
func (o *Orchestrator) StandbyCount(img *Image) int { return len(o.standby[img.key]) }

// EvictWarm invalidates an image's entire warm pool: the snapshot, the
// fork source, the donor, and any prewarmed standbys. Called on fork
// tamper detection and by operators re-registering an image; the next
// boot re-seeds the pool from a fresh measured cold boot.
func (o *Orchestrator) EvictWarm(img *Image) {
	img.snap, img.donor, img.fork = nil, nil, nil
	img.capturing = false
	img.warmEpoch++
	delete(o.standby, img.key)
}

// bootFault draws the launch-path fault hook. When the plan targets an
// attest site the draw is deferred to the exchange instead, so a given
// (rate, seed) plan consults the PRNG exactly once per attempt regardless
// of site — reruns stay bit-for-bit reproducible.
func (o *Orchestrator) bootFault() bool {
	if o.cfg.Faults != nil && o.cfg.Faults.Site.attest() {
		return false
	}
	return o.cfg.Faults.fire()
}

// attestTamper draws the attest-site fault hook.
func (o *Orchestrator) attestTamper() (FaultSite, bool) {
	if o.cfg.Faults == nil || !o.cfg.Faults.Site.attest() {
		return 0, false
	}
	return o.cfg.Faults.Site, o.cfg.Faults.fire()
}

// injectFault charges the cost of the aborted operation and returns the
// transient error. A PSP fault pays a LAUNCH_START slot on the shared PSP
// (so retries contend like real launches); a verifier fault pays the time
// to reach guest entry, modeled as the VMM load of the verifier stage.
func (o *Orchestrator) injectFault(p *sim.Proc) error {
	switch o.cfg.Faults.Site {
	case FaultVerifier:
		p.Sleep(o.host.Model.VMMLoad(64 << 10))
		return fmt.Errorf("%w: verifier abort after guest entry", ErrInjected)
	default:
		o.host.PSP.Resource().UseLabeled(p, o.host.Model.PSPLaunchStart, "LAUNCH_START")
		return fmt.Errorf("%w: PSP LAUNCH_START busy", ErrInjected)
	}
}

// attestExchange gates a booted guest behind the key broker: challenge,
// PSP report bound to the nonce and guest key, redemption, secret unwrap.
// The span shows up in the machine's trace timeline as "attest" and in the
// boot's EvAttestStart/EvAttestDone events, so Breakdown attributes it.
func (o *Orchestrator) attestExchange(p *sim.Proc, r *request, m *kvm.Machine) error {
	if o.cfg.KBS == nil {
		return nil
	}
	if o.cfg.Enrollment == nil {
		return errors.New("fleet: Config.KBS set without Enrollment")
	}
	if o.brk != nil && !o.brk.allow(p.Now()) {
		// Breaker open: refuse the exchange without touching the broker.
		// The refusal is a kbs "unavailable" denial — deterministic, so
		// the request fails fast instead of burning its retry budget.
		o.met.breakerFastFail()
		o.met.denial(string(kbs.ReasonUnavailable))
		return fmt.Errorf("fleet: circuit breaker open: %w", kbs.ErrUnavailable)
	}
	start := p.Now()
	m.Timeline.Begin("attest", start)
	m.Timeline.Record(start, sev.EvAttestStart)
	err := o.runExchange(p, r, m)
	m.Timeline.Record(p.Now(), sev.EvAttestDone)
	m.Timeline.End("attest", p.Now())
	outcome := "granted"
	if err != nil {
		outcome = "denied"
		if reason := kbs.ReasonOf(err); reason != "" {
			outcome = string(reason)
		}
	}
	// The broker's side of the exchange, on its own track, so the trace
	// shows key-release round trips next to the PSP's REPORT_GEN slots.
	o.met.reg.Record("kbs", "kbs.exchange", start, p.Now(),
		telemetry.A("tenant", r.Tenant),
		telemetry.A("outcome", outcome))
	if err != nil {
		return err
	}
	o.met.attested(p.Now().Sub(start))
	return nil
}

// runExchange performs one attest→key-release round trip, applying any
// planned attest-site tamper to the evidence before redemption.
func (o *Orchestrator) runExchange(p *sim.Proc, r *request, m *kvm.Machine) error {
	site, tampered := o.attestTamper()
	enrollVer := o.enrollVer

	p.Sleep(o.host.Model.AttestNetwork)
	ch, err := o.cfg.KBS.Challenge(r.Tenant, p.Now())
	if err != nil {
		return o.brokerErr(p, err, false, site)
	}

	// The guest agent's ephemeral key is generated inside encrypted
	// memory; the report binds the nonce and the key hash.
	agent := attest.NewAgentSeeded(o.cfg.AgentSeed + int64(r.id))
	report, err := m.Launch.BuildReport(p, kbs.BindReportData(ch.Nonce, agent.PublicKey()))
	if err != nil {
		return err
	}
	reportBytes := report.Marshal()
	chainBytes := o.cfg.Enrollment.Chain.Marshal()
	if tampered {
		reportBytes, chainBytes, err = o.tamperEvidence(site, reportBytes, chainBytes, r)
		if err != nil {
			return err
		}
	}

	req := kbs.RedeemRequest{
		Tenant:   r.Tenant,
		Nonce:    ch.Nonce,
		Report:   reportBytes,
		Chain:    chainBytes,
		GuestPub: agent.PublicKey(),
	}
	p.Sleep(o.host.Model.AttestNetwork)
	res, err := o.cfg.KBS.Redeem(req, p.Now())
	if err != nil {
		err = o.brokerErr(p, err, tampered, site)
		// A denial from evidence that straddled a Reenroll (report signed
		// under one VCEK, chain or admission state from the other) is not
		// a verdict on either identity: retry under the settled one.
		if !tampered && errors.Is(err, kbs.ErrDenied) && o.enrollVer != enrollVer {
			o.met.reattest()
			return fmt.Errorf("%w: enrollment moved mid-exchange: %w", ErrReattest, err)
		}
		return err
	}
	if o.brk != nil {
		o.brk.success()
	}
	if !res.ChainCached {
		// The broker walked the full VCEK→ASK→ARK chain; hot boots whose
		// chain is already in the verdict path skip this charge.
		p.Sleep(o.host.Model.KBSChainVerify)
	}
	if tampered && site == FaultReplay {
		// The first redemption was honest; the fault is the second one,
		// replaying the consumed nonce.
		p.Sleep(o.host.Model.AttestNetwork)
		if _, err := o.cfg.KBS.Redeem(req, p.Now()); err != nil {
			return o.brokerErr(p, err, true, site)
		}
		return errors.New("fleet: broker accepted a replayed nonce")
	}
	if _, err := agent.UnwrapBundle(res.Bundle); err != nil {
		return fmt.Errorf("fleet: unwrapping released secret: %w", err)
	}
	return nil
}

// brokerErr classifies a failed broker call. A denial is a verdict from a
// live broker: it resets the breaker's failure count and is accounted by
// reason. Anything else is a transport failure: it feeds the breaker and
// comes back wrapped in ErrKBSUnreachable, which the retry loop treats as
// transient.
func (o *Orchestrator) brokerErr(p *sim.Proc, err error, injected bool, site FaultSite) error {
	if !errors.Is(err, kbs.ErrDenied) {
		if o.brk != nil {
			o.brk.failure(p.Now())
		}
		return fmt.Errorf("%w: %w", ErrKBSUnreachable, err)
	}
	if o.brk != nil {
		o.brk.success()
	}
	return o.denied(err, injected, site)
}

// denied accounts a broker refusal by reason and classifies it: denials
// provoked by an injected tamper are transient (the retry path re-runs the
// exchange with honest evidence available), genuine denials are
// deterministic failures.
func (o *Orchestrator) denied(err error, injected bool, site FaultSite) error {
	reason := string(kbs.ReasonOf(err))
	if reason == "" {
		reason = "error"
	}
	o.met.denial(reason)
	if injected {
		return fmt.Errorf("%w: injected %s fault: %w", ErrInjected, site, err)
	}
	return err
}

// tamperRNG seeds the signing stream for re-signed tamper evidence. It is
// deliberately NOT the fault plan's rng: ecdsa.Sign consumes a
// nondeterministic number of bytes from its reader (randutil.MaybeReadByte),
// which would desync the fault draw sequence and break run reproducibility.
func (o *Orchestrator) tamperRNG(r *request) *rand.Rand {
	return rand.New(rand.NewSource(o.cfg.AgentSeed ^ int64(r.id)<<16 ^ 0x5eed))
}

// tamperEvidence corrupts the exchange's evidence according to the fault
// site: a flipped signature byte (forged), a report re-signed under the
// platform's previous-TCB VCEK with the matching stale chain (stale-tcb),
// or a report from a revoked twin platform (revoked). Replay leaves the
// evidence honest — the fault is redeeming it twice.
func (o *Orchestrator) tamperEvidence(site FaultSite, reportBytes, chainBytes []byte, r *request) ([]byte, []byte, error) {
	e := o.cfg.Enrollment
	switch site {
	case FaultForged:
		forged := append([]byte(nil), reportBytes...)
		forged[len(forged)-1] ^= 0x01
		return forged, chainBytes, nil
	case FaultStaleTCB:
		older, err := e.TCB.Predecessor()
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: stale-tcb fault needs a predecessor TCB: %w", err)
		}
		resigned, err := kbs.ResignReport(reportBytes, e.Authority.VCEKKey(e.ChipID, older), o.tamperRNG(r))
		if err != nil {
			return nil, nil, err
		}
		return resigned, e.Authority.ChainFor(e.ChipID, older).Marshal(), nil
	case FaultRevoked:
		twin := e.ChipID + "-revoked"
		if err := o.cfg.KBS.Revoke(twin); err != nil {
			return nil, nil, err
		}
		resigned, err := kbs.ResignReport(reportBytes, e.Authority.VCEKKey(twin, e.TCB), o.tamperRNG(r))
		if err != nil {
			return nil, nil, err
		}
		return resigned, e.Authority.ChainFor(twin, e.TCB).Marshal(), nil
	}
	return reportBytes, chainBytes, nil
}
