package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/severifast/severifast/internal/telemetry"
	"github.com/severifast/severifast/internal/trace"
)

// Tier is the path a boot request was served through.
type Tier int

// Boot tiers, fastest first.
const (
	// TierWarm restores a shared-key snapshot from the warm pool (§7).
	TierWarm Tier = iota
	// TierCachedCold is a full cold boot whose measurement artifacts came
	// from the measured-image cache (no re-hash, no re-plan).
	TierCachedCold
	// TierCold is a full cold boot including the measurement pass.
	TierCold
	numTiers
)

func (t Tier) String() string {
	switch t {
	case TierWarm:
		return "warm"
	case TierCachedCold:
		return "cached-cold"
	case TierCold:
		return "cold"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// Metrics is the orchestrator's registry. All mutation happens from
// simulation processes, which the engine runs one at a time, so the
// fields need no locking; Report/snapshot readers run after eng.Run.
type Metrics struct {
	// Boots counts completed boots per tier.
	Boots [numTiers]int
	// Latency holds per-tier request latency (admission to VM up), in
	// virtual time.
	Latency [numTiers]trace.Series
	// QueueWait is admission-to-dispatch time across all requests.
	QueueWait trace.Series
	// EndToEnd is admission-to-completion (boot + function execution).
	EndToEnd trace.Series

	// Submitted counts requests offered to the orchestrator; Rejected
	// counts those refused by backpressure (queue full or closed).
	Submitted int
	Rejected  int
	// Failed counts requests that exhausted their retry budget.
	Failed int
	// Faults counts injected transient faults observed; Retries counts
	// boot attempts made after a fault.
	Faults  int
	Retries int

	// QueueDepthMax is the high-water mark of queued requests.
	QueueDepthMax int
	// PerTenant counts served (completed or failed) requests by tenant.
	PerTenant map[string]int

	// Attested counts boots whose attest→key-release exchange was
	// granted; AttestLatency is the exchange span (challenge to secret
	// unwrapped) per granted boot.
	Attested      int
	AttestLatency trace.Series
	// Denials counts key-broker refusals by reason (kbs.Reason strings),
	// injected and genuine alike.
	Denials map[string]int
	// PolicyDenials counts admission-gate refusals from the policy
	// engine, keyed "rule/reason" (e.g. "platform/tcb-below-floor").
	PolicyDenials map[string]int

	// DeadlineExceeded counts requests abandoned because their per-boot
	// virtual-time budget (Config.BootDeadline) ran out.
	DeadlineExceeded int
	// Degraded counts launch-digest mismatches the degraded-mode policy
	// attributed to a poisoned measured-image cache entry and recovered
	// from on the cold path (Config.DegradedFallback).
	Degraded int
	// BreakerFastFails counts exchanges refused outright while the KBS
	// circuit breaker was open.
	BreakerFastFails int
	// BreakerTransitions counts breaker state entries by state name
	// ("open", "half-open", "closed").
	BreakerTransitions map[string]int

	// Reenrolls counts platform identity swaps (Orchestrator.Reenroll):
	// the host's rolling TCB updates.
	Reenrolls int
	// Reattests counts exchanges whose denial straddled a Reenroll and
	// was retried as a re-attestation (ErrReattest).
	Reattests int
	// ReattestQueuePeak is the high-water mark of requests concurrently
	// waiting out a re-attestation backoff — the thundering-herd depth a
	// rolling update builds on this host.
	ReattestQueuePeak int
	reattestWaiting   int
	// WarmInvalidated counts warm boots refused at serve time because the
	// image's warm pool was evicted mid-boot (ErrWarmInvalidated) — the
	// cost of a revocation storm landing on forked standbys.
	WarmInvalidated int

	// reg, when non-nil, mirrors every field above into the shared
	// telemetry registry under severifast_fleet_* metric names, so a
	// fleet run exports the same numbers Report prints. Nil is inert.
	reg *telemetry.Registry
}

func newMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{PerTenant: make(map[string]int), reg: reg}
}

// The mutation helpers below are the orchestrator's single write path:
// they keep the exported struct fields (read by Report and tests) and
// the registry mirror in lockstep.

func (m *Metrics) submitted() {
	m.Submitted++
	m.reg.Counter("severifast_fleet_submitted_total").Inc()
}

func (m *Metrics) rejected() {
	m.Rejected++
	m.reg.Counter("severifast_fleet_rejected_total").Inc()
}

func (m *Metrics) queueDepth(depth int) {
	if depth > m.QueueDepthMax {
		m.QueueDepthMax = depth
	}
	m.reg.Gauge("severifast_fleet_queue_depth_max").Max(float64(depth))
}

func (m *Metrics) queueWait(d time.Duration) {
	m.QueueWait = append(m.QueueWait, d)
	m.reg.Series("severifast_fleet_queue_wait_seconds").Observe(d)
}

func (m *Metrics) boot(tier Tier, latency time.Duration, tenant string) {
	m.Boots[tier]++
	m.Latency[tier] = append(m.Latency[tier], latency)
	m.PerTenant[tenant]++
	m.reg.Counter("severifast_fleet_boots_total", telemetry.A("tier", tier.String())).Inc()
	m.reg.Counter("severifast_fleet_served_total", telemetry.A("tenant", tenant)).Inc()
	m.reg.Series("severifast_fleet_boot_latency_seconds", telemetry.A("tier", tier.String())).Observe(latency)
}

func (m *Metrics) failed(tenant string) {
	m.Failed++
	m.PerTenant[tenant]++
	m.reg.Counter("severifast_fleet_failed_total").Inc()
	m.reg.Counter("severifast_fleet_served_total", telemetry.A("tenant", tenant)).Inc()
}

func (m *Metrics) fault() {
	m.Faults++
	m.reg.Counter("severifast_fleet_faults_total").Inc()
}

func (m *Metrics) retry() {
	m.Retries++
	m.reg.Counter("severifast_fleet_retries_total").Inc()
}

func (m *Metrics) endToEnd(d time.Duration) {
	m.EndToEnd = append(m.EndToEnd, d)
	m.reg.Series("severifast_fleet_end_to_end_seconds").Observe(d)
}

func (m *Metrics) attested(d time.Duration) {
	m.Attested++
	m.AttestLatency = append(m.AttestLatency, d)
	m.reg.Counter("severifast_fleet_attested_total").Inc()
	m.reg.Series("severifast_fleet_attest_latency_seconds").Observe(d)
}

func (m *Metrics) denial(reason string) {
	if m.Denials == nil {
		m.Denials = make(map[string]int)
	}
	m.Denials[reason]++
	m.reg.Counter("severifast_fleet_denials_total", telemetry.A("reason", reason)).Inc()
}

func (m *Metrics) policyDenied(rule, reason string) {
	if m.PolicyDenials == nil {
		m.PolicyDenials = make(map[string]int)
	}
	m.PolicyDenials[rule+"/"+reason]++
	m.reg.Counter("severifast_fleet_policy_denials_total",
		telemetry.A("reason", reason), telemetry.A("rule", rule)).Inc()
}

func (m *Metrics) deadline() {
	m.DeadlineExceeded++
	m.reg.Counter("severifast_fleet_deadline_exceeded_total").Inc()
}

func (m *Metrics) degraded() {
	m.Degraded++
	m.reg.Counter("severifast_fleet_degraded_total").Inc()
}

func (m *Metrics) breakerFastFail() {
	m.BreakerFastFails++
	m.reg.Counter("severifast_fleet_breaker_fastfail_total").Inc()
}

func (m *Metrics) reenrolled() {
	m.Reenrolls++
	m.reg.Counter("severifast_fleet_reenrolls_total").Inc()
}

func (m *Metrics) reattest() {
	m.Reattests++
	m.reg.Counter("severifast_fleet_reattests_total").Inc()
}

func (m *Metrics) reattestWait(delta int) {
	m.reattestWaiting += delta
	if m.reattestWaiting > m.ReattestQueuePeak {
		m.ReattestQueuePeak = m.reattestWaiting
	}
	m.reg.Gauge("severifast_fleet_reattest_queue_depth").Max(float64(m.reattestWaiting))
}

func (m *Metrics) warmInvalidated() {
	m.WarmInvalidated++
	m.reg.Counter("severifast_fleet_warm_invalidated_total").Inc()
}

func (m *Metrics) breakerTransition(to string) {
	if m.BreakerTransitions == nil {
		m.BreakerTransitions = make(map[string]int)
	}
	m.BreakerTransitions[to]++
	m.reg.Counter("severifast_fleet_breaker_transitions_total", telemetry.A("to", to)).Inc()
}

// TotalBoots sums completed boots across tiers.
func (m *Metrics) TotalBoots() int {
	n := 0
	for _, b := range m.Boots {
		n += b
	}
	return n
}

// Report renders the registry as a fleet report: tier counters, cache
// effect, queue behaviour, and per-tier latency distributions drawn with
// internal/trace's CDF renderer.
func (m *Metrics) Report(cache CacheStats, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet report: %d submitted, %d served, %d rejected, %d failed\n",
		m.Submitted, m.TotalBoots(), m.Rejected, m.Failed)
	for t := Tier(0); t < numTiers; t++ {
		lat := m.Latency[t]
		if m.Boots[t] == 0 {
			fmt.Fprintf(&sb, "  %-11s %5d boots\n", t, m.Boots[t])
			continue
		}
		fmt.Fprintf(&sb, "  %-11s %5d boots  p50 %v  p99 %v\n", t, m.Boots[t],
			lat.Percentile(50).Round(10*time.Microsecond),
			lat.Percentile(99).Round(10*time.Microsecond))
	}
	fmt.Fprintf(&sb, "  cache: %d hits, %d misses (hit ratio %.2f), %d plans, %.1f MiB hashed\n",
		cache.Hits, cache.Misses, cache.HitRatio(), cache.Plans,
		float64(cache.HashedBytes)/(1<<20))
	fmt.Fprintf(&sb, "  queue: depth high-water %d, wait p50 %v p99 %v\n",
		m.QueueDepthMax,
		m.QueueWait.Percentile(50).Round(10*time.Microsecond),
		m.QueueWait.Percentile(99).Round(10*time.Microsecond))
	if m.Faults > 0 || m.Retries > 0 {
		fmt.Fprintf(&sb, "  faults: %d injected, %d retries, %d requests failed\n",
			m.Faults, m.Retries, m.Failed)
	}
	if m.DeadlineExceeded > 0 || m.Degraded > 0 {
		fmt.Fprintf(&sb, "  robustness: %d deadline-exceeded, %d degraded recoveries\n",
			m.DeadlineExceeded, m.Degraded)
	}
	if len(m.BreakerTransitions) > 0 || m.BreakerFastFails > 0 {
		states := make([]string, 0, len(m.BreakerTransitions))
		for s := range m.BreakerTransitions {
			states = append(states, s)
		}
		sort.Strings(states)
		fmt.Fprintf(&sb, "  breaker: %d fast-fails, transitions", m.BreakerFastFails)
		for _, s := range states {
			fmt.Fprintf(&sb, " %s=%d", s, m.BreakerTransitions[s])
		}
		sb.WriteByte('\n')
	}
	if m.Reenrolls > 0 || m.Reattests > 0 || m.WarmInvalidated > 0 {
		fmt.Fprintf(&sb, "  storm: %d reenrolls, %d reattests (queue peak %d), %d warm invalidations\n",
			m.Reenrolls, m.Reattests, m.ReattestQueuePeak, m.WarmInvalidated)
	}
	if m.Attested > 0 {
		fmt.Fprintf(&sb, "  attest: %d granted, p50 %v p99 %v\n", m.Attested,
			m.AttestLatency.Percentile(50).Round(10*time.Microsecond),
			m.AttestLatency.Percentile(99).Round(10*time.Microsecond))
	}
	if len(m.Denials) > 0 {
		reasons := make([]string, 0, len(m.Denials))
		for r := range m.Denials {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		sb.WriteString("  denials:")
		for _, r := range reasons {
			fmt.Fprintf(&sb, " %s=%d", r, m.Denials[r])
		}
		sb.WriteByte('\n')
	}
	if len(m.PolicyDenials) > 0 {
		keys := make([]string, 0, len(m.PolicyDenials))
		for k := range m.PolicyDenials {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("  policy denials:")
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%d", k, m.PolicyDenials[k])
		}
		sb.WriteByte('\n')
	}
	if len(m.PerTenant) > 0 {
		tenants := make([]string, 0, len(m.PerTenant))
		for t := range m.PerTenant {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		sb.WriteString("  tenants:")
		for _, t := range tenants {
			fmt.Fprintf(&sb, " %s=%d", t, m.PerTenant[t])
		}
		sb.WriteByte('\n')
	}
	for t := Tier(0); t < numTiers; t++ {
		if len(m.Latency[t]) > 1 {
			sb.WriteString(trace.RenderCDF(fmt.Sprintf("%v boot latency", t), m.Latency[t], width))
		}
	}
	return sb.String()
}
