package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// instrumentedRun drives one fully instrumented fleet run (registry on
// the engine, the host, and the orchestrator) and returns the registry
// and metrics for inspection.
func instrumentedRun(t *testing.T, arrivals int) (*telemetry.Registry, *Metrics) {
	t.Helper()
	reg := telemetry.NewRegistry()
	eng := sim.NewEngine()
	eng.SetTracer(reg)
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	host.Telemetry = reg
	o := New(eng, host, Config{Workers: 4, EnableWarm: true, Telemetry: reg})
	img, err := o.RegisterImage("fn", kernelgen.Lupine(), kernelgen.BuildInitrd(7, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, eng, o, Workload{
		Arrivals:         arrivals,
		MeanInterarrival: 500 * time.Microsecond,
		ExecTime:         time.Millisecond,
		Tenants:          []string{"a", "b"},
		Images:           []*Image{img},
		Seed:             11,
	})
	return reg, o.Metrics()
}

// TestFleetBootSpansMatchReport is the acceptance check: the per-tier
// fleet.boot span counts in the trace equal the fleet report's Boots
// totals exactly.
func TestFleetBootSpansMatchReport(t *testing.T) {
	reg, m := instrumentedRun(t, 16)
	if m.TotalBoots() != 16 {
		t.Fatalf("TotalBoots = %d, want 16", m.TotalBoots())
	}
	for tier := Tier(0); tier < numTiers; tier++ {
		got := reg.SpanCount("fleet.boot", "tier", tier.String())
		if got != m.Boots[tier] {
			t.Fatalf("fleet.boot spans for %v = %d, report says %d", tier, got, m.Boots[tier])
		}
	}
	// The registry's counter mirror must agree too.
	for tier := Tier(0); tier < numTiers; tier++ {
		c := reg.Counter("severifast_fleet_boots_total", telemetry.A("tier", tier.String()))
		if int(c.Value()) != m.Boots[tier] {
			t.Fatalf("boots counter for %v = %d, report says %d", tier, int(c.Value()), m.Boots[tier])
		}
	}
	// Every boot also produced a vm.boot span tree on a worker track.
	if got := reg.SpanCount("vm.boot", "", ""); got < m.TotalBoots() {
		t.Fatalf("vm.boot spans = %d, want >= %d", got, m.TotalBoots())
	}
	// PSP serialization is visible: launch commands as service spans.
	if got := reg.SpanCount("LAUNCH_START", "", ""); got == 0 {
		t.Fatal("no LAUNCH_START service spans on the psp track")
	}
}

// TestFleetTraceDeterminism: two identical seeded runs export
// byte-identical Chrome traces and Prometheus text.
func TestFleetTraceDeterminism(t *testing.T) {
	var traces, proms [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		reg, _ := instrumentedRun(t, 12)
		if err := reg.WriteChromeTrace(&traces[i]); err != nil {
			t.Fatal(err)
		}
		if err := reg.WritePrometheus(&proms[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(traces[0].Bytes(), traces[1].Bytes()) {
		t.Fatal("chrome traces differ between identical seeded runs")
	}
	if !bytes.Equal(proms[0].Bytes(), proms[1].Bytes()) {
		t.Fatal("prometheus output differs between identical seeded runs")
	}
	// And the trace is well-formed JSON with the expected track metadata.
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traces[0].Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	tracks := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			tracks[ev.Args["name"]] = true
		}
	}
	if !tracks["psp"] {
		t.Fatalf("trace has no psp track; tracks = %v", tracks)
	}
	var worker bool
	for name := range tracks {
		if strings.HasPrefix(name, "fleet-worker-") {
			worker = true
		}
	}
	if !worker {
		t.Fatalf("trace has no worker tracks; tracks = %v", tracks)
	}
}

// TestMetricsMirror checks the registry mirror of the remaining metrics
// families against the struct fields Report prints.
func TestMetricsMirror(t *testing.T) {
	reg, m := instrumentedRun(t, 16)
	if v := int(reg.Counter("severifast_fleet_submitted_total").Value()); v != m.Submitted {
		t.Fatalf("submitted mirror = %d, struct %d", v, m.Submitted)
	}
	if n := reg.Series("severifast_fleet_queue_wait_seconds").Count(); n != len(m.QueueWait) {
		t.Fatalf("queue wait mirror = %d observations, struct %d", n, len(m.QueueWait))
	}
	if n := reg.Series("severifast_fleet_end_to_end_seconds").Count(); n != len(m.EndToEnd) {
		t.Fatalf("end-to-end mirror = %d observations, struct %d", n, len(m.EndToEnd))
	}
	if v := reg.Gauge("severifast_fleet_queue_depth_max").Value(); int(v) != m.QueueDepthMax {
		t.Fatalf("queue depth mirror = %v, struct %d", v, m.QueueDepthMax)
	}
}
