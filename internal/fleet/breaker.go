package fleet

import (
	"time"

	"github.com/severifast/severifast/internal/sim"
)

// BreakerPolicy configures the orchestrator's key-broker circuit breaker.
// The breaker watches transport-level broker failures (not denials: a
// denial is a verdict from a live broker) and, once Threshold consecutive
// failures accumulate, stops attempting exchanges entirely — boots fail
// fast with a breaker refusal instead of each burning its full retry
// budget against a dead dependency. After Cooldown of virtual time one
// probe exchange is allowed through; its outcome decides whether the
// breaker closes again or re-opens for another cool-down.
type BreakerPolicy struct {
	// Threshold is the consecutive transport-failure count that opens the
	// breaker. Zero or negative disables the breaker.
	Threshold int
	// Cooldown is the virtual-time span the breaker stays open before
	// admitting a half-open probe.
	Cooldown time.Duration
}

// breakerState is the classic three-state circuit-breaker machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is the orchestrator's breaker instance. Like the rest of the
// orchestrator's mutable state it is touched only by simulation processes
// of one engine, so it needs no locking; determinism follows from the
// engine's total event order.
type breaker struct {
	pol BreakerPolicy
	met *Metrics

	state    breakerState
	failures int      // consecutive transport failures while closed
	openedAt sim.Time // when the breaker last opened
	probing  bool     // a half-open probe exchange is in flight
}

func newBreaker(pol BreakerPolicy, met *Metrics) *breaker {
	if pol.Threshold <= 0 {
		return nil
	}
	return &breaker{pol: pol, met: met}
}

// allow reports whether an exchange may be attempted at now. While open it
// refuses until the cool-down elapses, then admits exactly one half-open
// probe; further exchanges are refused until the probe resolves.
func (b *breaker) allow(now sim.Time) bool {
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) < b.pol.Cooldown {
			return false
		}
		b.transition(breakerHalfOpen)
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// success records a broker response (a grant or a genuine denial — either
// proves the broker is alive). A successful half-open probe closes the
// breaker.
func (b *breaker) success() {
	b.probing = false
	b.failures = 0
	if b.state != breakerClosed {
		b.transition(breakerClosed)
	}
}

// failure records a transport failure at now. Threshold consecutive
// failures open the breaker; a failed half-open probe re-opens it for
// another cool-down.
func (b *breaker) failure(now sim.Time) {
	b.probing = false
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.pol.Threshold {
			b.openedAt = now
			b.transition(breakerOpen)
		}
	case breakerHalfOpen:
		b.openedAt = now
		b.transition(breakerOpen)
	}
}

func (b *breaker) transition(to breakerState) {
	b.state = to
	b.met.breakerTransition(to.String())
}

// State returns the breaker's state name, for tests and reports.
func (o *Orchestrator) BreakerState() string {
	if o.brk == nil {
		return ""
	}
	return o.brk.state.String()
}
