package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrInjected marks a transient fault planted by a FaultPlan. The
// orchestrator retries these with exponential backoff; any other boot
// error is treated as deterministic and fails the request immediately.
var ErrInjected = errors.New("fleet: injected transient fault")

// FaultSite names where in the boot path a fault fires.
type FaultSite int

// Fault sites.
const (
	// FaultPSP models a transient PSP command failure (firmware busy,
	// SEV_RET_RESOURCE_LIMIT): the launch aborts after the LAUNCH_START
	// cost has already been paid on the shared PSP.
	FaultPSP FaultSite = iota
	// FaultVerifier models a boot-verifier abort (a staging-page torn
	// write by a racing host thread): the guest halts after entry.
	FaultVerifier
	// FaultForged corrupts the attestation report's signature before
	// redemption: the key broker must refuse with a "forged" denial.
	FaultForged
	// FaultStaleTCB presents evidence from one TCB version back: the
	// report is re-signed under the platform's previous-TCB VCEK and
	// accompanied by its chain. The broker's minimum-TCB policy must
	// refuse with a "stale-tcb" denial.
	FaultStaleTCB
	// FaultRevoked presents evidence from a revoked twin of the platform
	// (same authority, chip ID on the revocation list): the broker must
	// refuse with a "revoked" denial.
	FaultRevoked
	// FaultReplay redeems a fully valid exchange twice: the second
	// redemption reuses the consumed nonce and the broker must refuse
	// with a "replay" denial.
	FaultReplay
)

func (s FaultSite) String() string {
	switch s {
	case FaultPSP:
		return "psp"
	case FaultVerifier:
		return "verifier"
	case FaultForged:
		return "forged"
	case FaultStaleTCB:
		return "stale-tcb"
	case FaultRevoked:
		return "revoked"
	case FaultReplay:
		return "replay"
	}
	return fmt.Sprintf("site(%d)", int(s))
}

// attest reports whether the site fires inside the attest→key-release
// exchange (rather than during launch). Attest-site draws happen in the
// exchange, so the launch-path fault hooks stay untouched.
func (s FaultSite) attest() bool { return s >= FaultForged }

// FaultPlan deterministically injects transient faults into boot attempts.
// Draws come from a seeded PRNG consulted in admission order, so a fleet
// run with a given seed always faults the same attempts — reruns are
// reproducible bit for bit. The zero value injects nothing.
type FaultPlan struct {
	// Rate is the per-attempt fault probability in [0,1).
	Rate float64
	// Seed fixes the draw sequence.
	Seed int64
	// Site selects where injected faults fire.
	Site FaultSite

	rng *rand.Rand
}

// fire reports whether the next boot attempt faults. Only simulation
// processes call it (one at a time), so the PRNG needs no locking.
func (f *FaultPlan) fire() bool {
	if f == nil || f.Rate <= 0 {
		return false
	}
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.Seed))
	}
	return f.rng.Float64() < f.Rate
}

// RetryPolicy bounds fault retries. Backoff is exponential in virtual
// time: attempt k (0-based) sleeps Backoff<<k before retrying.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt; 0 means a
	// faulted request fails immediately.
	Max int
	// Backoff is the base delay before the first retry.
	Backoff time.Duration
}

// delay returns the virtual-time backoff before retry attempt k (0-based).
func (r RetryPolicy) delay(k int) time.Duration {
	if r.Backoff <= 0 {
		return 0
	}
	if k > 20 {
		k = 20 // cap the shift; virtual time, but keep it sane
	}
	return r.Backoff << uint(k)
}
