package fleet

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
)

// fleetTCB is the enrolled platform's TCB in these tests. It is also the
// broker's minimum, so evidence from one version back (the stale-tcb
// fault) is always below the floor.
var fleetTCB = kbs.TCB{BootLoader: 2, TEE: 1, SNP: 8, Microcode: 115}

// testKBSFleet assembles a fleet whose boots are gated by an in-process
// key broker: the host PSP is enrolled under an authority, the broker pins
// the authority root, and the orchestrator provisions reference digests
// from its measured-image cache.
func testKBSFleet(t testing.TB, cfg Config, tenants ...string) (*sim.Engine, *Orchestrator, *Image, *kbs.Broker) {
	t.Helper()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	auth := kbs.NewAuthority(99)
	enr := auth.Enroll(host.PSP, "chip-A", fleetTCB)
	broker := kbs.NewBroker(auth.Root(), kbs.Config{
		MinTCB:   fleetTCB,
		NonceTTL: time.Second,
		Seed:     7,
	})
	if len(tenants) == 0 {
		tenants = []string{"t0"}
	}
	for _, tn := range tenants {
		broker.AddTenant(tn, []byte("disk key for "+tn))
	}
	cfg.KBS = broker
	cfg.Enrollment = enr
	cfg.AgentSeed = 1000
	o := New(eng, host, cfg)
	img, err := o.RegisterImage("fn", kernelgen.Lupine(), kernelgen.BuildInitrd(7, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	return eng, o, img, broker
}

// TestKBSGatedFleetGrantsAll is the e2e acceptance run: every boot runs
// the attest→key-release exchange against the broker, every fresh report
// on a provisioned digest is granted, and the attest span shows up in the
// fleet report.
func TestKBSGatedFleetGrantsAll(t *testing.T) {
	const arrivals = 16
	eng, o, img, broker := testKBSFleet(t, Config{Workers: 4}, "acme", "globex")
	runWorkload(t, eng, o, Workload{
		Arrivals:         arrivals,
		MeanInterarrival: time.Millisecond,
		ExecTime:         time.Millisecond,
		Tenants:          []string{"acme", "globex"},
		Images:           []*Image{img},
		Seed:             5,
	})

	m := o.Metrics()
	if m.TotalBoots() != arrivals || m.Failed != 0 {
		t.Fatalf("boots %d failed %d, want %d/0", m.TotalBoots(), m.Failed, arrivals)
	}
	if m.Attested != arrivals {
		t.Fatalf("attested %d boots, want %d", m.Attested, arrivals)
	}
	if len(m.Denials) != 0 {
		t.Fatalf("unexpected denials: %v", m.Denials)
	}
	if len(m.AttestLatency) != arrivals {
		t.Fatalf("attest latency series length %d, want %d", len(m.AttestLatency), arrivals)
	}
	bs, err := broker.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if bs.Grants != arrivals || bs.Challenges != arrivals {
		t.Fatalf("broker grants/challenges = %d/%d, want %d/%d", bs.Grants, bs.Challenges, arrivals, arrivals)
	}
	if bs.RefValues == 0 {
		t.Fatal("reference store empty: cache subscription never provisioned")
	}
	report := m.Report(o.CacheStats(), 60)
	if !strings.Contains(report, "attest: 16 granted") {
		t.Fatalf("report missing attest line:\n%s", report)
	}
}

// TestKBSDeterminism: an attestation-gated run with injected attest faults
// must still reproduce bit for bit from the same seeds.
func TestKBSDeterminism(t *testing.T) {
	run := func() (sim.Time, string) {
		eng, o, img, _ := testKBSFleet(t, Config{
			Workers: 4,
			Faults:  &FaultPlan{Rate: 0.25, Seed: 9, Site: FaultForged},
			Retry:   RetryPolicy{Max: 4, Backoff: time.Millisecond},
		}, "a", "b")
		runWorkload(t, eng, o, Workload{
			Arrivals:         20,
			MeanInterarrival: time.Millisecond,
			Tenants:          []string{"a", "b"},
			Images:           []*Image{img},
			Seed:             5,
		})
		return eng.Now(), o.Metrics().Report(o.CacheStats(), 60)
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 {
		t.Fatalf("virtual end times differ: %v vs %v", t1, t2)
	}
	if r1 != r2 {
		t.Fatalf("reports differ:\n%s\n---\n%s", r1, r2)
	}
}

// TestKBSDenialSites injects each attest-site fault at rate 1.0 and
// checks the broker refuses every attempt with that site's distinct
// reason, counted per reason in the fleet metrics.
func TestKBSDenialSites(t *testing.T) {
	const arrivals, maxRetry = 3, 1
	cases := []struct {
		site   FaultSite
		reason kbs.Reason
	}{
		{FaultForged, kbs.ReasonForged},
		{FaultStaleTCB, kbs.ReasonStaleTCB},
		{FaultRevoked, kbs.ReasonRevoked},
		{FaultReplay, kbs.ReasonReplay},
	}
	for _, tc := range cases {
		t.Run(tc.site.String(), func(t *testing.T) {
			eng, o, img, broker := testKBSFleet(t, Config{
				Workers: 1,
				Faults:  &FaultPlan{Rate: 1.0, Seed: 1, Site: tc.site},
				Retry:   RetryPolicy{Max: maxRetry, Backoff: time.Millisecond},
			})
			runWorkload(t, eng, o, Workload{Arrivals: arrivals, Images: []*Image{img}, Seed: 2})

			m := o.Metrics()
			if m.Failed != arrivals || m.TotalBoots() != 0 {
				t.Fatalf("failed %d boots %d, want %d/0", m.Failed, m.TotalBoots(), arrivals)
			}
			attempts := arrivals * (maxRetry + 1)
			if m.Faults != attempts {
				t.Fatalf("faults %d, want %d", m.Faults, attempts)
			}
			if got := m.Denials[string(tc.reason)]; got != attempts {
				t.Fatalf("denials[%s] = %d (all: %v), want %d", tc.reason, got, m.Denials, attempts)
			}
			if len(m.Denials) != 1 {
				t.Fatalf("denial reasons %v, want only %q", m.Denials, tc.reason)
			}
			// Injected denials are transient: they must not surface as the
			// run's deterministic error.
			if err := o.Err(); err != nil {
				t.Fatalf("injected denials surfaced as deterministic error: %v", err)
			}
			bs, err := broker.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if got := bs.Denials[string(tc.reason)]; got != attempts {
				t.Fatalf("broker denials[%s] = %d, want %d", tc.reason, got, attempts)
			}
			report := m.Report(o.CacheStats(), 60)
			if !strings.Contains(report, string(tc.reason)+"="+"6") {
				t.Fatalf("report missing denial counter %s=6:\n%s", tc.reason, report)
			}
		})
	}
}

// TestKBSFaultRecovery: attest-site faults at a moderate rate are absorbed
// by retries — the honest retry exchange gets a fresh challenge and is
// granted, so no request is lost.
func TestKBSFaultRecovery(t *testing.T) {
	for _, site := range []FaultSite{FaultForged, FaultStaleTCB, FaultRevoked, FaultReplay} {
		t.Run(site.String(), func(t *testing.T) {
			eng, o, img, _ := testKBSFleet(t, Config{
				Workers: 2,
				Faults:  &FaultPlan{Rate: 0.3, Seed: 11, Site: site},
				Retry:   RetryPolicy{Max: 8, Backoff: 500 * time.Microsecond},
			})
			runWorkload(t, eng, o, Workload{
				Arrivals:         12,
				MeanInterarrival: time.Millisecond,
				Images:           []*Image{img},
				Seed:             6,
			})
			m := o.Metrics()
			if m.Faults == 0 {
				t.Fatal("no faults fired at rate 0.3")
			}
			if m.TotalBoots() != 12 || m.Failed != 0 {
				t.Fatalf("boots %d failed %d, want 12/0 (faults %d)", m.TotalBoots(), m.Failed, m.Faults)
			}
			if m.Attested != 12 {
				t.Fatalf("attested %d, want 12", m.Attested)
			}
			if len(m.Denials) == 0 {
				t.Fatalf("faults fired but no denials recorded")
			}
		})
	}
}

// TestKBSChainCacheHotBoots: the broker walks the VCEK→ASK→ARK chain once
// per distinct chain and caches the verdict per (chip, TCB, digest,
// policy, level) — hot boots skip both, which shows up as a cheaper
// attest span.
func TestKBSChainCacheHotBoots(t *testing.T) {
	const arrivals = 4
	eng, o, img, broker := testKBSFleet(t, Config{Workers: 1})
	runWorkload(t, eng, o, Workload{
		Arrivals:         arrivals,
		MeanInterarrival: 100 * time.Millisecond,
		Images:           []*Image{img},
		Seed:             3,
	})
	if got := o.Metrics().Attested; got != arrivals {
		t.Fatalf("attested %d, want %d", got, arrivals)
	}
	bs, err := broker.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if bs.ChainMiss != 1 || bs.ChainHits != arrivals-1 {
		t.Fatalf("chain cache hits/misses = %d/%d, want %d/1", bs.ChainHits, bs.ChainMiss, arrivals-1)
	}
	if bs.VerdictMis != 1 || bs.VerdictHit != arrivals-1 {
		t.Fatalf("verdict cache hits/misses = %d/%d, want %d/1", bs.VerdictHit, bs.VerdictMis, arrivals-1)
	}
	lat := o.Metrics().AttestLatency
	if lat[0] <= lat[1] {
		t.Fatalf("first (cold-chain) attest %v not slower than hot %v", lat[0], lat[1])
	}
}

// TestKBSUnknownTenantFailsDeterministically: a tenant the broker has
// never heard of is a genuine denial, not a transient fault — it fails
// the request immediately and surfaces as the orchestrator's first error.
func TestKBSUnknownTenantFailsDeterministically(t *testing.T) {
	eng, o, img, _ := testKBSFleet(t, Config{Workers: 1}, "acme")
	eng.Go("submit", func(p *sim.Proc) {
		if err := o.Submit(p, Request{Tenant: "mallory", Image: img}); err != nil {
			t.Error(err)
		}
		o.Close()
	})
	eng.Run()
	err := o.Err()
	if err == nil {
		t.Fatal("unknown tenant was granted")
	}
	if !errors.Is(err, kbs.ErrTenant) || !errors.Is(err, kbs.ErrDenied) {
		t.Fatalf("error %v does not match kbs.ErrTenant/ErrDenied", err)
	}
	m := o.Metrics()
	if m.Failed != 1 || m.Denials["tenant"] != 1 {
		t.Fatalf("failed %d denials %v, want 1 failure with one tenant denial", m.Failed, m.Denials)
	}
}

// TestKBSWarmTierAttested: warm restores are attested too. On the fork
// path a warm boot inherits the donor's launch digest, so the broker's
// reference store holds exactly one derived digest — the measured cold
// image — and warm restores attest against it with no extra
// provisioning.
func TestKBSWarmTierAttested(t *testing.T) {
	const arrivals = 4
	eng, o, img, broker := testKBSFleet(t, Config{Workers: 1, EnableWarm: true})
	runWorkload(t, eng, o, Workload{
		Arrivals:         arrivals,
		MeanInterarrival: 2 * time.Second,
		Images:           []*Image{img},
		Seed:             8,
	})
	m := o.Metrics()
	if m.Boots[TierCold] != 1 || m.Boots[TierWarm] != arrivals-1 {
		t.Fatalf("boots per tier %v, want 1 cold + %d warm", m.Boots, arrivals-1)
	}
	if m.Attested != arrivals {
		t.Fatalf("attested %d, want all %d including warm restores", m.Attested, arrivals)
	}
	bs, err := broker.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if bs.RefValues != 1 {
		t.Fatalf("reference store holds %d digests, want 1 (fork inherits the cold digest)", bs.RefValues)
	}
	if bs.Grants != arrivals {
		t.Fatalf("broker granted %d, want %d", bs.Grants, arrivals)
	}
	cold := m.Latency[TierCold].Percentile(50)
	warm := m.Latency[TierWarm].Percentile(50)
	if warm >= cold {
		t.Fatalf("attested warm restore (%v) not faster than cold boot (%v)", warm, cold)
	}
}
