package fleet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/sim"
)

// flakyKBS wraps the broker with a virtual-time outage switch: while down,
// Challenge and Redeem return plain transport errors (not denials), which
// is the failure shape that feeds the circuit breaker.
type flakyKBS struct {
	inner kbs.Service
	down  func(now sim.Time) bool
	calls int
}

func (f *flakyKBS) Challenge(tenant string, now sim.Time) (kbs.Challenge, error) {
	f.calls++
	if f.down(now) {
		return kbs.Challenge{}, fmt.Errorf("kbs transport: connection refused")
	}
	return f.inner.Challenge(tenant, now)
}

func (f *flakyKBS) Redeem(req kbs.RedeemRequest, now sim.Time) (*kbs.RedeemResult, error) {
	f.calls++
	if f.down(now) {
		return nil, fmt.Errorf("kbs transport: connection refused")
	}
	return f.inner.Redeem(req, now)
}

func (f *flakyKBS) Provision(d [32]byte, l string) error { return f.inner.Provision(d, l) }
func (f *flakyKBS) Revoke(c string) error                { return f.inner.Revoke(c) }
func (f *flakyKBS) Stats() (kbs.Stats, error)            { return f.inner.Stats() }

// breakerFleet assembles an attestation-gated fleet whose broker is
// unreachable inside [downFrom, downTo), with the breaker armed.
func breakerFleet(t *testing.T, workers int, pol BreakerPolicy, downFrom, downTo time.Duration) (*sim.Engine, *Orchestrator, *Image) {
	t.Helper()
	eng, o, img, _ := testKBSFleet(t, Config{
		Workers: workers,
		Retry:   RetryPolicy{Max: 1, Backoff: time.Millisecond},
		Breaker: pol,
	})
	from, to := sim.Time(0).Add(downFrom), sim.Time(0).Add(downTo)
	o.cfg.KBS = &flakyKBS{
		inner: o.cfg.KBS,
		down:  func(now sim.Time) bool { return now >= from && now < to },
	}
	return eng, o, img
}

// TestBreakerOpensFastFailsRecovers is the breaker acceptance scenario:
// under an always-failing broker the breaker opens within Threshold
// consecutive transport failures, subsequent boots fail fast with a
// kbs "unavailable" denial (ErrDenied, so the facade classifies it as an
// attestation denial) without touching the broker, and once the fault
// clears the half-open probe recovers the fleet — all visible as
// telemetry counters.
func TestBreakerOpensFastFailsRecovers(t *testing.T) {
	const threshold = 3
	// Outage covers the first ten virtual seconds — far beyond phase 1's
	// boots; boots submitted after recovery and cooldown succeed. The
	// cooldown must exceed one machine-boot time (~hundreds of virtual
	// ms), or every phase-1 attempt would qualify as a half-open probe
	// and nothing would fast-fail.
	eng, o, img := breakerFleet(t, 1, BreakerPolicy{
		Threshold: threshold,
		Cooldown:  2 * time.Second,
	}, 0, 10*time.Second)

	var errs []error
	submit := func(p *sim.Proc, n int, gap time.Duration) {
		for i := 0; i < n; i++ {
			if err := o.Submit(p, Request{Tenant: "t0", Image: img, Done: func(dp *sim.Proc, tier Tier, err error) {
				errs = append(errs, err)
			}}); err != nil {
				t.Error(err)
			}
			p.Sleep(gap)
		}
	}
	eng.Go("arrivals", func(p *sim.Proc) {
		// Phase 1: five boots into the outage. Retry.Max=1, so each boot
		// burns at most 2 transport failures; the breaker opens mid-phase
		// and the tail fails fast on the open breaker.
		submit(p, 5, time.Millisecond)
		// Phase 2: after the outage and a full cooldown, three more boots.
		// The first is the half-open probe; its success closes the breaker.
		p.Sleep(15 * time.Second)
		submit(p, 3, time.Millisecond)
		o.Close()
	})
	eng.Run()

	if len(errs) != 8 {
		t.Fatalf("recorded %d outcomes, want 8", len(errs))
	}
	var unreachable, fastFail, ok int
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, kbs.ErrUnavailable):
			// Breaker refusal: a denial (fails fast, no retry) that is NOT
			// a transport error.
			if !errors.Is(err, kbs.ErrDenied) {
				t.Errorf("breaker refusal does not classify as a denial: %v", err)
			}
			if errors.Is(err, ErrKBSUnreachable) {
				t.Errorf("breaker refusal classified as transport error: %v", err)
			}
			fastFail++
		case errors.Is(err, ErrKBSUnreachable):
			unreachable++
		default:
			t.Errorf("unclassified boot error: %v", err)
		}
	}
	if ok != 3 {
		t.Fatalf("%d boots succeeded after recovery, want 3 (errors: %v)", ok, errs)
	}
	if fastFail == 0 {
		t.Fatal("no boot failed fast on the open breaker")
	}
	if unreachable == 0 {
		t.Fatal("no boot surfaced the underlying transport failure")
	}

	m := o.Metrics()
	if m.BreakerFastFails != fastFail {
		t.Fatalf("BreakerFastFails=%d, want %d", m.BreakerFastFails, fastFail)
	}
	if m.Denials[string(kbs.ReasonUnavailable)] != fastFail {
		t.Fatalf("unavailable denials %v, want %d", m.Denials, fastFail)
	}
	if m.BreakerTransitions["open"] != 1 {
		t.Fatalf("breaker opened %d times, want once (transitions %v)", m.BreakerTransitions["open"], m.BreakerTransitions)
	}
	if m.BreakerTransitions["half-open"] != 1 || m.BreakerTransitions["closed"] != 1 {
		t.Fatalf("recovery transitions missing: %v", m.BreakerTransitions)
	}
	if got := o.BreakerState(); got != "closed" {
		t.Fatalf("final breaker state %q, want closed", got)
	}
}

// TestBreakerThreshold: the breaker opens after exactly Threshold
// consecutive transport failures — not before — and a denial in between
// resets the count (a denial proves the broker is alive).
func TestBreakerThreshold(t *testing.T) {
	const threshold = 4
	// Retry.Max=1 → 2 transport failures per boot. One boot = 2 failures:
	// below threshold. Two boots = 4: opens exactly at the last attempt.
	eng, o, img := breakerFleet(t, 1, BreakerPolicy{
		Threshold: threshold,
		Cooldown:  time.Hour, // never recovers within this run
	}, 0, time.Hour)

	eng.Go("arrivals", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := o.Submit(p, Request{Tenant: "t0", Image: img}); err != nil {
				t.Error(err)
			}
			p.Sleep(time.Millisecond)
		}
		o.Close()
	})
	eng.Run()

	m := o.Metrics()
	if m.BreakerTransitions["open"] != 1 {
		t.Fatalf("open transitions %v, want exactly 1", m.BreakerTransitions)
	}
	// Boot 3 never reaches the broker: it fails fast on the open breaker.
	if m.BreakerFastFails != 1 {
		t.Fatalf("fast-fails %d, want 1", m.BreakerFastFails)
	}
	if o.BreakerState() != "open" {
		t.Fatalf("final state %q, want open", o.BreakerState())
	}
}

// TestBreakerDeterminism: same seeds, same outage, same schedule — for
// every worker count. The breaker's transitions and the run's virtual end
// time must reproduce bit for bit, and the whole thing must be race-clean
// (run with -race in CI).
func TestBreakerDeterminism(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			run := func() (sim.Time, string, map[string]int) {
				eng, o, img := breakerFleet(t, workers, BreakerPolicy{
					Threshold: 3,
					Cooldown:  50 * time.Millisecond,
				}, 5*time.Millisecond, 400*time.Millisecond)
				// Not runWorkload: breaker fast-fails are deterministic
				// errors, so o.Err() is non-nil by design here.
				w := Workload{
					Arrivals:         12,
					MeanInterarrival: 2 * time.Millisecond,
					Images:           []*Image{img},
					Seed:             5,
				}
				if err := w.Run(eng, o); err != nil {
					t.Fatal(err)
				}
				eng.Run()
				return eng.Now(), o.Metrics().Report(o.CacheStats(), 60), o.Metrics().BreakerTransitions
			}
			t1, r1, b1 := run()
			t2, r2, b2 := run()
			if t1 != t2 {
				t.Fatalf("virtual end times differ: %v vs %v", t1, t2)
			}
			if r1 != r2 {
				t.Fatalf("reports differ:\n%s\n---\n%s", r1, r2)
			}
			if len(b1) != len(b2) {
				t.Fatalf("breaker transitions differ: %v vs %v", b1, b2)
			}
			for k, v := range b1 {
				if b2[k] != v {
					t.Fatalf("breaker transitions differ at %q: %d vs %d", k, v, b2[k])
				}
			}
		})
	}
}

// TestRetryBackoffDeadline: a boot whose remaining deadline budget cannot
// cover the next backoff gives up with ErrDeadlineExceeded instead of
// sleeping into certain failure.
func TestRetryBackoffDeadline(t *testing.T) {
	eng, o, img, _ := testKBSFleet(t, Config{
		Workers:      1,
		Retry:        RetryPolicy{Max: 8, Backoff: 200 * time.Millisecond},
		BootDeadline: 300 * time.Millisecond,
	})
	o.cfg.KBS = &flakyKBS{
		inner: o.cfg.KBS,
		down:  func(sim.Time) bool { return true },
	}
	var got error
	eng.Go("arrivals", func(p *sim.Proc) {
		if err := o.Submit(p, Request{Tenant: "t0", Image: img, Done: func(dp *sim.Proc, tier Tier, err error) {
			got = err
		}}); err != nil {
			t.Error(err)
		}
		o.Close()
	})
	eng.Run()
	if !errors.Is(got, ErrDeadlineExceeded) {
		t.Fatalf("error %v, want ErrDeadlineExceeded", got)
	}
	if !errors.Is(got, ErrKBSUnreachable) {
		t.Fatalf("deadline error lost the underlying cause: %v", got)
	}
	if o.Metrics().DeadlineExceeded != 1 {
		t.Fatalf("DeadlineExceeded=%d, want 1", o.Metrics().DeadlineExceeded)
	}
}
