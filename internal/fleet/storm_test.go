package fleet

import (
	"errors"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
)

// hookedKBS decorates a broker with a pre-Redeem hook, so tests can land
// storm events (floor bumps, re-enrollments, pool evictions) at the
// exact virtual instant an exchange is in flight.
type hookedKBS struct {
	kbs.Service
	onRedeem func()
}

func (h *hookedKBS) Redeem(req kbs.RedeemRequest, now sim.Time) (*kbs.RedeemResult, error) {
	if h.onRedeem != nil {
		h.onRedeem()
	}
	return h.Service.Redeem(req, now)
}

// TestReenrollMidExchangeRetries drives the rolling-drift straddle: a
// minimum-TCB floor bump plus host re-enrollment lands while an exchange
// is in flight, so the in-flight evidence (signed under the old VCEK) is
// denied stale-tcb. The denial must come back as retryable ErrReattest,
// and the retry — re-admitted and re-attested under the settled new
// identity — must serve the boot.
func TestReenrollMidExchangeRetries(t *testing.T) {
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	auth := kbs.NewAuthority(99)
	enr := auth.Enroll(host.PSP, "chip-A", fleetTCB)
	broker := kbs.NewBroker(auth.Root(), kbs.Config{MinTCB: fleetTCB, NonceTTL: time.Second, Seed: 7})
	broker.AddTenant("t0", []byte("disk key"))

	hooked := &hookedKBS{Service: broker}
	o := New(eng, host, Config{
		Workers:    1,
		Retry:      RetryPolicy{Max: 2, Backoff: time.Millisecond},
		KBS:        hooked,
		Enrollment: enr,
		AgentSeed:  1000,
		Admission:  broker.PolicyEngine(),
	})
	img, err := o.RegisterImage("fn", kernelgen.Lupine(), kernelgen.BuildInitrd(7, 1<<20))
	if err != nil {
		t.Fatal(err)
	}

	newTCB := fleetTCB
	newTCB.Microcode++
	fired := false
	hooked.onRedeem = func() {
		if fired {
			return
		}
		fired = true
		// The storm instant: the floor moves past the host's current TCB
		// and the host re-enrolls at the new one — while this exchange's
		// report, signed under the old VCEK, is already on the wire. The
		// bump is dated one instant back so the in-flight redemption is
		// strictly after the (inclusive) boundary.
		if err := broker.BumpFloor(newTCB, eng.Now()-1); err != nil {
			t.Error(err)
		}
		o.Reenroll(auth.Enroll(host.PSP, "chip-A", newTCB))
	}

	var bootErr error
	eng.Go("arrival", func(p *sim.Proc) {
		if err := o.Submit(p, Request{
			Tenant: "t0",
			Image:  img,
			Done:   func(dp *sim.Proc, tier Tier, err error) { bootErr = err },
		}); err != nil {
			t.Error(err)
		}
		o.Close()
	})
	eng.Run()

	if bootErr != nil {
		t.Fatalf("boot failed after re-attestation: %v", bootErr)
	}
	m := o.Metrics()
	if m.Reenrolls != 1 || m.Reattests != 1 {
		t.Fatalf("reenrolls/reattests = %d/%d, want 1/1", m.Reenrolls, m.Reattests)
	}
	if m.ReattestQueuePeak != 1 {
		t.Fatalf("reattest queue peak = %d, want 1", m.ReattestQueuePeak)
	}
	if m.Denials["stale-tcb"] != 1 {
		t.Fatalf("denials = %v, want one stale-tcb", m.Denials)
	}
	if m.Retries == 0 {
		t.Fatal("straddled exchange was not retried")
	}
}

// TestWarmInvalidatedMidBoot drives a revocation storm onto a forked
// warm boot: the image's pool is evicted while the forked guest's
// exchange is in flight. The guest must never be served (the epoch check
// refuses it as retryable ErrWarmInvalidated) and the retry must re-seed
// cold.
func TestWarmInvalidatedMidBoot(t *testing.T) {
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	auth := kbs.NewAuthority(99)
	enr := auth.Enroll(host.PSP, "chip-A", fleetTCB)
	broker := kbs.NewBroker(auth.Root(), kbs.Config{MinTCB: fleetTCB, NonceTTL: time.Second, Seed: 7})
	broker.AddTenant("t0", []byte("disk key"))

	hooked := &hookedKBS{Service: broker}
	o := New(eng, host, Config{
		Workers:    1,
		EnableWarm: true,
		Retry:      RetryPolicy{Max: 2, Backoff: time.Millisecond},
		KBS:        hooked,
		Enrollment: enr,
		AgentSeed:  1000,
		Admission:  broker.PolicyEngine(),
	})
	img, err := o.RegisterImage("fn", kernelgen.Lupine(), kernelgen.BuildInitrd(7, 1<<20))
	if err != nil {
		t.Fatal(err)
	}

	redeems := 0
	hooked.onRedeem = func() {
		// The first exchange belongs to the seeding cold boot (the fork
		// capture precedes attestation); the second is the warm fork —
		// evict its pool mid-exchange.
		redeems++
		if redeems == 2 {
			o.EvictWarm(img)
		}
	}

	bootErrs := make([]error, 2)
	tiers := make([]Tier, 2)
	eng.Go("arrivals", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			i := i
			if err := o.Submit(p, Request{
				Tenant: "t0",
				Image:  img,
				Done: func(dp *sim.Proc, tier Tier, err error) {
					bootErrs[i], tiers[i] = err, tier
				},
			}); err != nil {
				t.Error(err)
			}
			p.Sleep(20 * time.Millisecond)
		}
		o.Close()
	})
	eng.Run()

	for i, err := range bootErrs {
		if err != nil {
			t.Fatalf("boot %d failed: %v", i, err)
		}
	}
	m := o.Metrics()
	if m.WarmInvalidated != 1 {
		t.Fatalf("warm invalidations = %d, want 1", m.WarmInvalidated)
	}
	if m.Boots[TierWarm] != 0 {
		t.Fatalf("%d warm boots served from an invalidated pool", m.Boots[TierWarm])
	}
	if tiers[1] == TierWarm {
		t.Fatal("second boot served warm despite mid-boot eviction")
	}
	if !img.HasWarm() {
		t.Fatal("retry did not re-seed the warm pool cold")
	}
}

// TestRetryableSentinels pins the transient taxonomy: the storm
// sentinels are retryable, genuine denials are not.
func TestRetryableSentinels(t *testing.T) {
	for _, err := range []error{ErrReattest, ErrWarmInvalidated, ErrKBSUnreachable, ErrInjected} {
		if !retryable(err) {
			t.Fatalf("%v not retryable", err)
		}
	}
	if retryable(kbs.ErrStaleTCB) || retryable(errors.New("deterministic")) {
		t.Fatal("deterministic errors classified transient")
	}
}
