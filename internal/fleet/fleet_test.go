package fleet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
)

// testFleet assembles an engine, host, and orchestrator with the Lupine
// preset (the smallest kernel — these tests boot the full simulated path
// dozens of times).
func testFleet(t testing.TB, cfg Config) (*sim.Engine, *Orchestrator, *Image) {
	t.Helper()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	o := New(eng, host, cfg)
	img, err := o.RegisterImage("fn", kernelgen.Lupine(), kernelgen.BuildInitrd(7, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	return eng, o, img
}

func runWorkload(t testing.TB, eng *sim.Engine, o *Orchestrator, w Workload) {
	t.Helper()
	if err := w.Run(eng, o); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := o.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFleet64BootsAcross8Workers is the acceptance run: 64 boots admitted
// through an 8-worker pool, all served, with the measured-image cache
// planning exactly once. Run under -race this also exercises the cache's
// locking from the engine goroutine.
func TestFleet64BootsAcross8Workers(t *testing.T) {
	eng, o, img := testFleet(t, Config{Workers: 8})
	runWorkload(t, eng, o, Workload{
		Arrivals:         64,
		MeanInterarrival: 100 * time.Microsecond,
		ExecTime:         2 * time.Millisecond,
		Tenants:          []string{"a", "b", "c", "d"},
		Images:           []*Image{img},
		Seed:             42,
	})

	m := o.Metrics()
	if m.Submitted != 64 || m.Rejected != 0 {
		t.Fatalf("submitted %d rejected %d, want 64/0", m.Submitted, m.Rejected)
	}
	if got := m.TotalBoots(); got != 64 {
		t.Fatalf("TotalBoots = %d, want 64", got)
	}
	cs := o.CacheStats()
	if cs.Plans != 1 {
		t.Fatalf("cache planned %d times for one image, want 1", cs.Plans)
	}
	if cs.Hits != 63 || cs.Misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 63/1", cs.Hits, cs.Misses)
	}
	if m.Boots[TierCold] != 1 || m.Boots[TierCachedCold] != 63 {
		t.Fatalf("boots per tier = %v, want 1 cold + 63 cached-cold", m.Boots)
	}
	// Arrivals outpace 8 workers, so the queue must have backed up.
	if m.QueueDepthMax == 0 {
		t.Fatal("queue never backed up despite arrival burst")
	}
	if len(m.EndToEnd) != 64 || len(m.QueueWait) != 64 {
		t.Fatalf("latency series lengths = %d/%d, want 64", len(m.EndToEnd), len(m.QueueWait))
	}
	for tenant, n := range m.PerTenant {
		if n != 16 {
			t.Fatalf("tenant %s served %d, want 16", tenant, n)
		}
	}
	report := m.Report(cs, 60)
	for _, want := range []string{"64 submitted", "cached-cold", "hit ratio 0.98"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestCachedBootSkipsMeasurement is the cache-effect acceptance test: the
// second boot of an identical image must not re-run measure.Plan (plan
// counter stays 1, hit counter rises) and must be faster in virtual time
// because the measurement pass is skipped.
func TestCachedBootSkipsMeasurement(t *testing.T) {
	bootOnceThrough := func(cache *Cache) time.Duration {
		eng := sim.NewEngine()
		host := kvm.NewHost(eng, costmodel.Default(), 1)
		o := New(eng, host, Config{Workers: 1, Cache: cache})
		img, err := o.RegisterImage("fn", kernelgen.Lupine(), kernelgen.BuildInitrd(7, 1<<20))
		if err != nil {
			t.Fatal(err)
		}
		eng.Go("submit", func(p *sim.Proc) {
			if err := o.Submit(p, Request{Tenant: "t", Image: img}); err != nil {
				t.Error(err)
			}
			o.Close()
		})
		eng.Run()
		if err := o.Err(); err != nil {
			t.Fatal(err)
		}
		return eng.Now().Sub(0)
	}

	shared := NewCache()
	coldTime := bootOnceThrough(shared)
	if s := shared.Stats(); s.Plans != 1 || s.Misses != 1 {
		t.Fatalf("after cold boot: %+v, want 1 plan, 1 miss", s)
	}
	cachedTime := bootOnceThrough(shared)
	s := shared.Stats()
	if s.Plans != 1 {
		t.Fatalf("cached boot re-planned: %d plans", s.Plans)
	}
	if s.Hits < 1 {
		t.Fatalf("cached boot missed: %+v", s)
	}
	if cachedTime >= coldTime {
		t.Fatalf("cached boot (%v) not faster than cold boot (%v)", cachedTime, coldTime)
	}
	t.Logf("cold %v, cached %v (saved %v)", coldTime, cachedTime, coldTime-cachedTime)
}

// TestDeterminism: identical seeds must reproduce the run bit for bit —
// same virtual end time, same report.
func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, string) {
		eng, o, img := testFleet(t, Config{
			Workers:    4,
			QueueDepth: 16,
			Faults:     &FaultPlan{Rate: 0.2, Seed: 9, Site: FaultPSP},
			Retry:      RetryPolicy{Max: 3, Backoff: time.Millisecond},
		})
		runWorkload(t, eng, o, Workload{
			Arrivals:         32,
			MeanInterarrival: time.Millisecond,
			ExecTime:         time.Millisecond,
			Tenants:          []string{"a", "b"},
			Images:           []*Image{img},
			Seed:             5,
		})
		return eng.Now(), o.Metrics().Report(o.CacheStats(), 60)
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 {
		t.Fatalf("virtual end times differ: %v vs %v", t1, t2)
	}
	if r1 != r2 {
		t.Fatalf("reports differ:\n%s\n---\n%s", r1, r2)
	}
}

// TestBackpressure: a bounded queue with a slow pool must shed load, and
// the bookkeeping must balance (served + rejected == submitted).
func TestBackpressure(t *testing.T) {
	eng, o, img := testFleet(t, Config{Workers: 1, QueueDepth: 2})
	runWorkload(t, eng, o, Workload{
		Arrivals:         16,
		MeanInterarrival: 10 * time.Microsecond, // far faster than one worker boots
		Images:           []*Image{img},
		Seed:             3,
	})
	m := o.Metrics()
	if m.Rejected == 0 {
		t.Fatal("bounded queue rejected nothing under overload")
	}
	if m.QueueDepthMax > 2 {
		t.Fatalf("queue depth high-water %d exceeds bound 2", m.QueueDepthMax)
	}
	if m.TotalBoots()+m.Rejected != m.Submitted {
		t.Fatalf("bookkeeping: %d boots + %d rejected != %d submitted",
			m.TotalBoots(), m.Rejected, m.Submitted)
	}
}

// TestTenantFairness: with one worker, a tenant submitting one request
// behind a burst from another tenant must be served round-robin — second,
// not last.
func TestTenantFairness(t *testing.T) {
	eng, o, img := testFleet(t, Config{Workers: 1})
	var order []string
	eng.Go("submit", func(p *sim.Proc) {
		done := func(tenant string) func(*sim.Proc, Tier, error) {
			return func(_ *sim.Proc, _ Tier, err error) {
				if err != nil {
					t.Error(err)
				}
				order = append(order, tenant)
			}
		}
		for i := 0; i < 8; i++ {
			if err := o.Submit(p, Request{Tenant: "noisy", Image: img, Done: done("noisy")}); err != nil {
				t.Error(err)
			}
		}
		if err := o.Submit(p, Request{Tenant: "quiet", Image: img, Done: done("quiet")}); err != nil {
			t.Error(err)
		}
		o.Close()
	})
	eng.Run()
	if err := o.Err(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 9 {
		t.Fatalf("served %d requests, want 9", len(order))
	}
	if order[1] != "quiet" {
		t.Fatalf("quiet tenant served at position %d (order %v), want 1", indexOf(order, "quiet"), order)
	}
}

func indexOf(s []string, v string) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// TestFaultRetryExhaustion: with a certain fault every attempt, each
// request burns its full retry budget in exponential virtual-time backoff
// and fails.
func TestFaultRetryExhaustion(t *testing.T) {
	const arrivals, maxRetry = 4, 2
	eng, o, img := testFleet(t, Config{
		Workers: 1,
		Faults:  &FaultPlan{Rate: 1.0, Seed: 1, Site: FaultPSP},
		Retry:   RetryPolicy{Max: maxRetry, Backoff: time.Millisecond},
	})
	runWorkload(t, eng, o, Workload{Arrivals: arrivals, Images: []*Image{img}, Seed: 2})
	m := o.Metrics()
	if m.Failed != arrivals {
		t.Fatalf("failed %d, want all %d", m.Failed, arrivals)
	}
	if m.TotalBoots() != 0 {
		t.Fatalf("booted %d despite certain faults", m.TotalBoots())
	}
	if want := arrivals * (maxRetry + 1); m.Faults != want {
		t.Fatalf("faults observed %d, want %d", m.Faults, want)
	}
	if want := arrivals * maxRetry; m.Retries != want {
		t.Fatalf("retries %d, want %d", m.Retries, want)
	}
	// Each request backs off 1ms + 2ms; the run cannot finish before the
	// serialized backoffs alone.
	if minBackoff := time.Duration(arrivals) * 3 * time.Millisecond; eng.Now().Sub(0) < minBackoff {
		t.Fatalf("run ended at %v, before the %v of mandatory backoff", eng.Now(), minBackoff)
	}
	if o.Err() != nil {
		t.Fatalf("injected faults surfaced as deterministic error: %v", o.Err())
	}
}

// TestFaultRecovery: transient faults at a moderate rate must be absorbed
// by retries without losing requests.
func TestFaultRecovery(t *testing.T) {
	for _, site := range []FaultSite{FaultPSP, FaultVerifier} {
		t.Run(site.String(), func(t *testing.T) {
			eng, o, img := testFleet(t, Config{
				Workers: 4,
				Faults:  &FaultPlan{Rate: 0.3, Seed: 11, Site: site},
				Retry:   RetryPolicy{Max: 8, Backoff: 500 * time.Microsecond},
			})
			runWorkload(t, eng, o, Workload{
				Arrivals:         24,
				MeanInterarrival: time.Millisecond,
				Images:           []*Image{img},
				Seed:             6,
			})
			m := o.Metrics()
			if m.Faults == 0 {
				t.Fatal("no faults fired at rate 0.3")
			}
			if m.TotalBoots() != 24 || m.Failed != 0 {
				t.Fatalf("boots %d failed %d, want 24/0 (faults %d, retries %d)",
					m.TotalBoots(), m.Failed, m.Faults, m.Retries)
			}
		})
	}
}

// TestWarmTierRestores: with the warm pool on, the first boot is cold and
// donates a snapshot; later boots restore from it and are faster.
func TestWarmTierRestores(t *testing.T) {
	eng, o, img := testFleet(t, Config{Workers: 1, EnableWarm: true})
	// Space arrivals far apart so per-tier latency is pure boot service
	// time, not queue wait.
	runWorkload(t, eng, o, Workload{
		Arrivals:         4,
		MeanInterarrival: 2 * time.Second,
		Images:           []*Image{img},
		Seed:             8,
	})
	m := o.Metrics()
	if m.Boots[TierCold] != 1 {
		t.Fatalf("cold boots = %d, want exactly the donor", m.Boots[TierCold])
	}
	if m.Boots[TierWarm] != 3 {
		t.Fatalf("warm boots = %d, want 3", m.Boots[TierWarm])
	}
	cold := m.Latency[TierCold].Percentile(50)
	warm := m.Latency[TierWarm].Percentile(50)
	if warm >= cold {
		t.Fatalf("warm restore (%v) not faster than cold boot (%v)", warm, cold)
	}
	t.Logf("cold %v, warm %v", cold, warm)
}

// TestSharedCacheAcrossShards runs four orchestrator shards on four OS
// goroutines — each with its own engine and host — all sharing one
// measured-image cache. Under -race this is the load-bearing concurrency
// test: the cache is the only cross-goroutine state.
func TestSharedCacheAcrossShards(t *testing.T) {
	const shards, bootsPerShard = 4, 8
	shared := NewCache()
	var wg sync.WaitGroup
	errs := make(chan error, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			eng := sim.NewEngine()
			host := kvm.NewHost(eng, costmodel.Default(), int64(s+1))
			o := New(eng, host, Config{Workers: 2, Cache: shared})
			img, err := o.RegisterImage("fn", kernelgen.Lupine(), kernelgen.BuildInitrd(7, 1<<20))
			if err != nil {
				errs <- err
				return
			}
			if err := (Workload{
				Arrivals:         bootsPerShard,
				MeanInterarrival: time.Millisecond,
				Images:           []*Image{img},
				Seed:             int64(s),
			}).Run(eng, o); err != nil {
				errs <- err
				return
			}
			eng.Run()
			if err := o.Err(); err != nil {
				errs <- err
				return
			}
			if got := o.Metrics().TotalBoots(); got != bootsPerShard {
				errs <- fmt.Errorf("shard %d booted %d, want %d", s, got, bootsPerShard)
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := shared.Stats()
	if st.Entries != 1 {
		t.Fatalf("shared cache holds %d entries for one image, want 1", st.Entries)
	}
	if st.Hits+st.Misses != shards*bootsPerShard {
		t.Fatalf("lookups = %d, want %d", st.Hits+st.Misses, shards*bootsPerShard)
	}
	// Every miss planned, but racing planners all collapsed to one entry;
	// once published, no further misses are possible.
	if st.Plans != st.Misses {
		t.Fatalf("plans %d != misses %d", st.Plans, st.Misses)
	}
	if st.Hits < uint64(shards*bootsPerShard-shards) {
		t.Fatalf("hits %d implausibly low: %+v", st.Hits, st)
	}
}

// TestSubmitAfterClose and queue bookkeeping on the error paths.
func TestSubmitAfterClose(t *testing.T) {
	eng, o, img := testFleet(t, Config{Workers: 1})
	eng.Go("submit", func(p *sim.Proc) {
		o.Close()
		if err := o.Submit(p, Request{Tenant: "t", Image: img}); !errors.Is(err, ErrClosed) {
			t.Errorf("Submit after Close = %v, want ErrClosed", err)
		}
	})
	eng.Run()
	m := o.Metrics()
	if m.Submitted != 1 || m.Rejected != 1 {
		t.Fatalf("submitted/rejected = %d/%d, want 1/1", m.Submitted, m.Rejected)
	}
}
