package severifast

// One benchmark per table and figure in the paper's evaluation. Each
// benchmark regenerates its experiment through the harness and reports the
// headline *simulated* quantities as custom metrics (sim_*), alongside the
// usual wall-clock cost of running the simulation itself.
//
// The full-size sweep lives in cmd/sevf-bench; benchmarks here use reduced
// run counts so `go test -bench=.` stays minutes, not hours.

import (
	"fmt"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/expt"
	"github.com/severifast/severifast/internal/kernelgen"
)

func benchOpts() expt.Options {
	return expt.Options{Runs: 3, Seed: 1, InitrdSize: 16 << 20}
}

func reportMS(b *testing.B, name string, d time.Duration) {
	b.ReportMetric(float64(d)/float64(time.Millisecond), name)
}

// pickMS extracts a "123.45ms" cell from a table row found by prefix.
func pickMS(b *testing.B, tab *expt.Table, col int, prefix ...string) time.Duration {
	b.Helper()
	for _, row := range tab.Rows {
		ok := true
		for i, p := range prefix {
			if i >= len(row) || row[i] != p {
				ok = false
				break
			}
		}
		if ok {
			var v float64
			if _, err := fmtSscanf(row[col], &v); err != nil {
				b.Fatalf("cell %q: %v", row[col], err)
			}
			return time.Duration(v * float64(time.Millisecond))
		}
	}
	b.Fatalf("no row %v in %s", prefix, tab.Title)
	return 0
}

func fmtSscanf(s string, v *float64) (int, error) {
	return sscanfMS(s, v)
}

// BenchmarkFig3OVMFPhases regenerates the OVMF phase breakdown (Fig. 3).
func BenchmarkFig3OVMFPhases(b *testing.B) {
	opts := benchOpts()
	var total, verifier time.Duration
	for i := 0; i < b.N; i++ {
		tab, err := expt.Fig3(opts)
		if err != nil {
			b.Fatal(err)
		}
		total = pickMS(b, tab, 1, "TOTAL")
		verifier = pickMS(b, tab, 1, "boot verifier")
	}
	reportMS(b, "sim_ovmf_total_ms", total)
	reportMS(b, "sim_verifier_ms", verifier)
}

// BenchmarkFig4PreEncryption regenerates the pre-encryption line (Fig. 4).
func BenchmarkFig4PreEncryption(b *testing.B) {
	opts := benchOpts()
	var at23M time.Duration
	for i := 0; i < b.N; i++ {
		tab, err := expt.Fig4(opts)
		if err != nil {
			b.Fatal(err)
		}
		at23M = pickMS(b, tab, 3, "23.0M")
	}
	reportMS(b, "sim_preenc_23MiB_ms", at23M) // paper: 5650 ms
}

// BenchmarkFig5MeasuredDirectBoot regenerates the step-cost table (Fig. 5).
func BenchmarkFig5MeasuredDirectBoot(b *testing.B) {
	opts := benchOpts()
	var lz, vm time.Duration
	for i := 0; i < b.N; i++ {
		tab, err := expt.Fig5(opts)
		if err != nil {
			b.Fatal(err)
		}
		lz = pickMS(b, tab, 5, "aws/bzImage-lz4")
		vm = pickMS(b, tab, 5, "aws/vmlinux")
	}
	reportMS(b, "sim_mdb_bz_lz4_ms", lz)
	reportMS(b, "sim_mdb_vmlinux_ms", vm)
}

// BenchmarkFig7BootStructPolicy regenerates the pre-encrypt-or-generate
// table (Fig. 7).
func BenchmarkFig7BootStructPolicy(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig7(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8ArtifactSizes regenerates the kernel-size table (Fig. 8).
func BenchmarkFig8ArtifactSizes(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig8(opts); err != nil {
			b.Fatal(err)
		}
	}
	art, err := kernelgen.Cached(kernelgen.AWS())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(art.BzImageLZ4))/(1<<20), "aws_bzimage_MiB") // paper: 7.1
}

// BenchmarkFig9EndToEnd regenerates the CDF experiment (Fig. 9) at reduced
// run count, reporting the headline reduction.
func BenchmarkFig9EndToEnd(b *testing.B) {
	opts := benchOpts()
	opts.Runs = 2
	opts.Presets = []kernelgen.Preset{kernelgen.AWS()}
	var sevf, qemuD time.Duration
	for i := 0; i < b.N; i++ {
		data, err := expt.Fig9(opts)
		if err != nil {
			b.Fatal(err)
		}
		sevf = data.CDFs["aws/severifast"].Mean()
		qemuD = data.CDFs["aws/qemu-ovmf"].Mean()
	}
	reportMS(b, "sim_severifast_ms", sevf)
	reportMS(b, "sim_qemu_ms", qemuD)
	b.ReportMetric(100*(1-float64(sevf)/float64(qemuD)), "reduction_pct") // paper: 88.5 for aws
}

// BenchmarkFig10Breakdown regenerates the pre-encryption/firmware table.
func BenchmarkFig10Breakdown(b *testing.B) {
	opts := benchOpts()
	opts.Presets = []kernelgen.Preset{kernelgen.AWS()}
	var sevfPre, qemuPre time.Duration
	for i := 0; i < b.N; i++ {
		tab, err := expt.Fig10(opts)
		if err != nil {
			b.Fatal(err)
		}
		sevfPre = pickMS(b, tab, 1, "severifast aws")
		qemuPre = pickMS(b, tab, 1, "qemu-ovmf aws")
	}
	reportMS(b, "sim_sevf_preenc_ms", sevfPre) // paper: 8.22
	reportMS(b, "sim_qemu_preenc_ms", qemuPre) // paper: 287.76
}

// BenchmarkFig11Breakdown regenerates the three-scheme breakdown (Fig. 11).
func BenchmarkFig11Breakdown(b *testing.B) {
	opts := benchOpts()
	opts.Presets = []kernelgen.Preset{kernelgen.AWS()}
	var stock, sevf time.Duration
	for i := 0; i < b.N; i++ {
		tab, err := expt.Fig11(opts)
		if err != nil {
			b.Fatal(err)
		}
		stock = pickMS(b, tab, 6, "aws", "stock-fc")
		sevf = pickMS(b, tab, 6, "aws", "severifast")
	}
	reportMS(b, "sim_stock_ms", stock)
	reportMS(b, "sim_severifast_ms", sevf)
	b.ReportMetric(float64(sevf)/float64(stock), "sev_overhead_x") // paper: ~4x
}

// BenchmarkFig12Concurrency regenerates the concurrent-launch sweep.
func BenchmarkFig12Concurrency(b *testing.B) {
	opts := benchOpts()
	opts.ConcurrencyPoints = []int{1, 10, 25, 50}
	var at50 time.Duration
	for i := 0; i < b.N; i++ {
		tab, err := expt.Fig12(opts)
		if err != nil {
			b.Fatal(err)
		}
		at50 = pickMS(b, tab, 1, "50")
	}
	reportMS(b, "sim_mean_at_50_ms", at50) // paper: ~1800
}

// BenchmarkMemoryFootprint regenerates the §6.3 numbers.
func BenchmarkMemoryFootprint(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := expt.MemoryFootprint(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOutOfBandHashing regenerates the §4.3 ablation.
func BenchmarkAblationOutOfBandHashing(b *testing.B) {
	opts := benchOpts()
	opts.Presets = []kernelgen.Preset{kernelgen.AWS()}
	var saved time.Duration
	for i := 0; i < b.N; i++ {
		tab, err := expt.AblationOutOfBandHashing(opts)
		if err != nil {
			b.Fatal(err)
		}
		saved = pickMS(b, tab, 3, "aws")
	}
	reportMS(b, "sim_saved_ms", saved)
}

// BenchmarkAblationPreEncryptPageTables regenerates the Fig. 7 ablation.
func BenchmarkAblationPreEncryptPageTables(b *testing.B) {
	opts := benchOpts()
	opts.Presets = []kernelgen.Preset{kernelgen.AWS()}
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationPreEncryptPageTables(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHugePages regenerates the §6.1 pvalidate ablation.
func BenchmarkAblationHugePages(b *testing.B) {
	opts := benchOpts()
	opts.Presets = []kernelgen.Preset{kernelgen.AWS()}
	var delta time.Duration
	for i := 0; i < b.N; i++ {
		tab, err := expt.AblationHugePages(opts)
		if err != nil {
			b.Fatal(err)
		}
		delta = pickMS(b, tab, 3, "aws")
	}
	reportMS(b, "sim_4k_penalty_ms", delta) // paper: ~60
}

// BenchmarkBootSEVeriFast measures the wall-clock cost of simulating one
// SEVeriFast boot (the simulator's own hot path).
func BenchmarkBootSEVeriFast(b *testing.B) {
	// Warm artifact caches outside the timed region.
	if _, err := Boot(Config{Kernel: KernelAWS, InitrdMiB: 16}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Boot(Config{Kernel: KernelAWS, InitrdMiB: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBootStock measures the wall-clock cost of simulating one stock
// Firecracker boot.
func BenchmarkBootStock(b *testing.B) {
	if _, err := Boot(Config{Kernel: KernelAWS, Scheme: SchemeStock, InitrdMiB: 16}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Boot(Config{Kernel: KernelAWS, Scheme: SchemeStock, InitrdMiB: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpectedLaunchDigest measures the §4.2 digest tool.
func BenchmarkExpectedLaunchDigest(b *testing.B) {
	cfg := Config{Kernel: KernelAWS, InitrdMiB: 16}
	if _, err := ExpectedLaunchDigest(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExpectedLaunchDigest(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// sscanfMS parses "123.45ms" into v.
func sscanfMS(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%fms", v)
}
