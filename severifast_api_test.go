package severifast

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/severifast/severifast/internal/attest"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/verifier"
)

// TestErrorTaxonomy: every config-validation failure is classifiable with
// errors.Is against the exported sentinels.
func TestErrorTaxonomy(t *testing.T) {
	if _, err := Boot(Config{Scheme: "grub"}); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("bad scheme: %v, want ErrUnknownScheme", err)
	}
	if _, err := Boot(Config{Kernel: "gentoo"}); !errors.Is(err, ErrUnknownKernel) {
		t.Fatalf("bad kernel: %v, want ErrUnknownKernel", err)
	}
	if _, err := Boot(Config{Codec: "zstd"}); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("bad codec: %v, want ErrUnknownCodec", err)
	}
	if _, err := ExpectedLaunchDigest(Config{Codec: "xz"}); !errors.Is(err, ErrUnknownCodec) {
		t.Fatal("ExpectedLaunchDigest skipped codec validation")
	}
}

// TestClassifyInternalErrors feeds classifyErr genuine internal failure
// chains — the ones firecracker/qemu/attest wrap with %w — and checks the
// facade sentinel mapping.
func TestClassifyInternalErrors(t *testing.T) {
	// A real attestation denial from the owner: garbage report bytes.
	owner := attest.NewOwner(nil, []byte("s"), rand.New(rand.NewSource(1)))
	_, denial := owner.HandleReport([]byte("garbage"), []byte("pub"))
	if denial == nil {
		t.Fatal("owner accepted garbage")
	}
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"verifier mismatch", fmt.Errorf("firecracker: %w", fmt.Errorf("%w: kernel hash", verifier.ErrVerification)), ErrMeasurementMismatch},
		{"attest denial", fmt.Errorf("firecracker: attestation: %w", denial), ErrAttestationDenied},
		{"attest measurement", fmt.Errorf("qemu: attestation: %w", attest.ErrMeasurement), ErrMeasurementMismatch},
		{"kbs denial", fmt.Errorf("fleet: %w", &kbs.Denial{Reason: kbs.ReasonReplay}), ErrAttestationDenied},
		{"kbs measurement", fmt.Errorf("fleet: %w", &kbs.Denial{Reason: kbs.ReasonMeasurement}), ErrMeasurementMismatch},
	}
	for _, tc := range cases {
		got := classifyErr(tc.err)
		if !errors.Is(got, tc.want) {
			t.Fatalf("%s: classifyErr(%v) = %v, does not match facade sentinel", tc.name, tc.err, got)
		}
		// The internal chain must survive for errors.Is against the
		// internal sentinel too.
		if !errors.Is(got, errors.Unwrap(tc.err)) && !errors.Is(got, tc.err) {
			t.Fatalf("%s: original chain lost", tc.name)
		}
	}
	if classifyErr(nil) != nil {
		t.Fatal("classifyErr(nil) != nil")
	}
	plain := errors.New("plumbing")
	if classifyErr(plain) != plain {
		t.Fatal("unclassifiable errors must pass through unchanged")
	}
}

// TestResultSpans: a boot exposes its span tree and milestone events.
func TestResultSpans(t *testing.T) {
	res, err := Boot(Config{Kernel: KernelLupine, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	spans := res.Spans()
	if len(spans) == 0 {
		t.Fatal("Spans() empty after a boot")
	}
	if spans[0].Name != "vm.boot" || spans[0].Depth != 0 || spans[0].Start != 0 {
		t.Fatalf("root span = %+v, want vm.boot at depth 0, start 0", spans[0])
	}
	if spans[0].Attrs["scheme"] != "severifast-bz" || spans[0].Attrs["vmm"] != "firecracker" {
		t.Fatalf("root attrs = %v, want scheme=severifast-bz vmm=firecracker", spans[0].Attrs)
	}
	if spans[0].Attrs["asid"] == "" {
		t.Fatalf("root attrs = %v, want an asid annotation", spans[0].Attrs)
	}
	byName := map[string]bool{}
	for _, s := range spans {
		if s.Duration < 0 || s.Start < 0 {
			t.Fatalf("span %s has negative time: %+v", s.Name, s)
		}
		if s.Name != "vm.boot" && s.Depth == 0 {
			t.Fatalf("span %s at depth 0 alongside the root", s.Name)
		}
		byName[s.Name] = true
	}
	for _, want := range []string{"vmm.stage", "bootstrap", "linux.boot"} {
		if !byName[want] {
			t.Fatalf("span %q missing; have %v", want, byName)
		}
	}
	events := res.Events()
	if len(events) == 0 {
		t.Fatal("Events() empty after a boot")
	}
	var sawEntry bool
	for _, e := range events {
		if e.Name == "kernel entry" {
			sawEntry = true
		}
	}
	if !sawEntry {
		t.Fatalf("no kernel-entry event; events = %v", events)
	}
	if got := res.RenderTimeline(100); got == "" || got == "(no timeline)\n" {
		t.Fatal("RenderTimeline empty for a booted result")
	}
}

// TestHostTelemetryExports: the host's exporters produce valid output and
// same-seed hosts produce byte-identical bytes.
func TestHostTelemetryExports(t *testing.T) {
	var traces [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		h := NewHostSeed(5)
		if _, err := h.Boot(Config{Kernel: KernelLupine, InitrdMiB: 2, Seed: 5}); err != nil {
			t.Fatal(err)
		}
		if err := h.Telemetry().WriteChromeTrace(&traces[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(traces[0].Bytes(), traces[1].Bytes()) {
		t.Fatal("same-seed hosts exported different traces")
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(traces[0].Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	var prom, sum bytes.Buffer
	h := NewHostSeed(5)
	if _, err := h.Boot(Config{Kernel: KernelLupine, InitrdMiB: 2, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if err := h.Telemetry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if err := h.Telemetry().WriteJSONSummary(&sum); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(sum.Bytes()) {
		t.Fatal("JSON summary invalid")
	}
}

// TestWarmBootSpans: warm restores carry a span tree too, annotated as
// warm-restore.
func TestWarmBootSpans(t *testing.T) {
	host := NewHost()
	cold, err := host.Boot(Config{Kernel: KernelLupine, InitrdMiB: 2, AllowKeySharing: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := host.Snapshot(cold)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := host.WarmBoot(snap)
	if err != nil {
		t.Fatal(err)
	}
	spans := warm.Spans()
	if len(spans) == 0 {
		t.Fatal("warm boot has no spans")
	}
	if spans[0].Attrs["scheme"] != "warm-restore" {
		t.Fatalf("warm root attrs = %v, want scheme=warm-restore", spans[0].Attrs)
	}
	var restored bool
	for _, s := range spans {
		if s.Name == "snapshot.restore" {
			restored = true
		}
	}
	if !restored {
		t.Fatalf("no snapshot.restore span; spans = %+v", spans)
	}
}
