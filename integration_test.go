package severifast

// Cross-cutting scenario tests over the public API: flows that span
// several subsystems and would be a downstream user's first contact with
// the library.

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"
)

// TestScenarioMultiTenantHost boots guests for two different tenants on
// one host, each with their own guest-owner service. Each owner releases
// its secret only to its own configuration, and a tenant cannot attest
// against the other's service.
func TestScenarioMultiTenantHost(t *testing.T) {
	host := NewHost()

	cfgA := Config{Kernel: KernelAWS, InitrdMiB: 2}
	cfgB := Config{Kernel: KernelUbuntu, InitrdMiB: 2}

	ownerA := NewGuestOwner(host, []byte("tenant-a-volume-key"))
	if err := ownerA.AllowConfig(cfgA); err != nil {
		t.Fatal(err)
	}
	ownerB := NewGuestOwner(host, []byte("tenant-b-volume-key"))
	if err := ownerB.AllowConfig(cfgB); err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(ownerA.Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(ownerB.Handler())
	defer srvB.Close()

	guestA, err := host.Boot(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	guestB, err := host.Boot(cfgB)
	if err != nil {
		t.Fatal(err)
	}

	secretA, err := guestA.AttestOverHTTP(srvA.URL)
	if err != nil {
		t.Fatalf("tenant A attestation: %v", err)
	}
	if !bytes.Equal(secretA, []byte("tenant-a-volume-key")) {
		t.Fatal("tenant A got the wrong secret")
	}
	// Tenant A's guest against tenant B's owner: different expected
	// digest (different kernel) — refused.
	if _, err := guestA.AttestOverHTTP(srvB.URL); err == nil {
		t.Fatal("tenant A attested against tenant B's owner")
	}
	if _, err := guestB.AttestOverHTTP(srvB.URL); err != nil {
		t.Fatalf("tenant B attestation: %v", err)
	}
}

// TestScenarioHostReusedSerially boots many guests one after another on
// the same host — the paper's serial-runs methodology — and checks the
// timings are identical (determinism) while ASIDs and digests behave.
func TestScenarioHostReusedSerially(t *testing.T) {
	host := NewHost()
	cfg := Config{Kernel: KernelLupine, InitrdMiB: 2}
	var first time.Duration
	for i := 0; i < 5; i++ {
		res, err := host.Boot(cfg)
		if err != nil {
			t.Fatalf("boot %d: %v", i, err)
		}
		if i == 0 {
			first = res.Total
		} else if res.Total != first {
			t.Fatalf("boot %d took %v, boot 0 took %v; serial boots must be identical", i, res.Total, first)
		}
	}
}

// TestScenarioMixedFleet launches confidential and plain guests together:
// the plain guests must not be slowed by the SEV guests' PSP contention.
func TestScenarioMixedFleet(t *testing.T) {
	plainAlone, err := NewHost().Boot(Config{Kernel: KernelLupine, Scheme: SchemeStock, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Run a 4-way SEV burst on a host, then boot a plain guest on the
	// same host and compare with a plain boot on a quiet host.
	host := NewHost()
	if _, err := host.BootConcurrent(Config{Kernel: KernelLupine, InitrdMiB: 2}, 4); err != nil {
		t.Fatal(err)
	}
	plainAfter, err := host.Boot(Config{Kernel: KernelLupine, Scheme: SchemeStock, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plainAfter.Total != plainAlone.Total {
		t.Fatalf("plain boot after SEV burst took %v vs %v alone; non-SEV boots must not pay PSP costs",
			plainAfter.Total, plainAlone.Total)
	}
}

// TestScenarioVerifierUpgrade models a fleet rolling out a new verifier
// build: the owner allows both digests during the transition, then
// revokes... (the API has no revoke; a new owner stands in for rotation).
func TestScenarioVerifierUpgrade(t *testing.T) {
	host := NewHost()
	oldCfg := Config{Kernel: KernelAWS, InitrdMiB: 2, VerifierSeed: 1}
	newCfg := Config{Kernel: KernelAWS, InitrdMiB: 2, VerifierSeed: 2}

	owner := NewGuestOwner(host, []byte("k"))
	if err := owner.AllowConfig(oldCfg); err != nil {
		t.Fatal(err)
	}
	if err := owner.AllowConfig(newCfg); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(owner.Handler())
	defer srv.Close()

	for _, cfg := range []Config{oldCfg, newCfg} {
		res, err := host.Boot(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.AttestOverHTTP(srv.URL); err != nil {
			t.Fatalf("verifier seed %d refused during rollout: %v", cfg.VerifierSeed, err)
		}
	}

	// After rotation, a fresh owner only trusts the new build.
	rotated := NewGuestOwner(host, []byte("k2"))
	if err := rotated.AllowConfig(newCfg); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(rotated.Handler())
	defer srv2.Close()
	oldGuest, err := host.Boot(oldCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oldGuest.AttestOverHTTP(srv2.URL); err == nil {
		t.Fatal("retired verifier still attests after rotation")
	}
}

// TestScenarioWarmPoolServesBurst combines snapshotting with concurrency:
// one donor, several warm clones, all faster than cold boots.
func TestScenarioWarmPoolServesBurst(t *testing.T) {
	host := NewHost()
	cold, err := host.Boot(Config{Kernel: KernelAWS, InitrdMiB: 2, AllowKeySharing: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := host.Snapshot(cold)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		warm, err := host.WarmBoot(snap)
		if err != nil {
			t.Fatalf("clone %d: %v", i, err)
		}
		if warm.Total >= cold.Total {
			t.Fatalf("clone %d warm (%v) not faster than cold (%v)", i, warm.Total, cold.Total)
		}
	}
}

// TestScenarioAllKernelsAllSchemes is the full configuration matrix smoke
// test: every kernel preset boots under every scheme that supports it.
func TestScenarioAllKernelsAllSchemes(t *testing.T) {
	kernels := []Kernel{KernelLupine, KernelAWS, KernelUbuntu}
	schemes := []Scheme{SchemeStock, SchemeSEVeriFast, SchemeSEVeriFastVmlinux, SchemeQEMUOVMF}
	for _, k := range kernels {
		for _, s := range schemes {
			res, err := Boot(Config{Kernel: k, Scheme: s, InitrdMiB: 2})
			if err != nil {
				t.Fatalf("%s/%s: %v", k, s, err)
			}
			if !res.InitrdOK || res.CPUs != 1 {
				t.Fatalf("%s/%s: bad guest state %+v", k, s, res)
			}
		}
	}
}
